"""Protocol configuration and the paper's tuned parameter sets.

The tunables of the diagnostic protocol (Sec. 5/9):

* ``penalty_threshold`` (``P``) — maximum accumulated penalty before a
  node is isolated;
* ``reward_threshold`` (``R``) — number of consecutive fault-free
  rounds after which the memory of previous faults is reset;
* ``criticalities`` (``s_i``) — per-node penalty increment, derived
  from the criticality of the jobs hosted on the node.

Table 2 of the paper reports the experimentally tuned values for the
automotive and aerospace domains; :func:`automotive_config` and
:func:`aerospace_config` reproduce them.  The tuning procedure itself
(how P and s_i are derived from tolerated-outage requirements) lives in
:mod:`repro.analysis.tuning`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Sequence

#: Table 2: reward threshold used in both domains (≈42 min at T=2.5 ms).
PAPER_REWARD_THRESHOLD = 10 ** 6
#: Table 2: automotive penalty threshold.
AUTOMOTIVE_PENALTY_THRESHOLD = 197
#: Table 2: aerospace penalty threshold.
AEROSPACE_PENALTY_THRESHOLD = 17


class CriticalityClass(enum.Enum):
    """Application criticality classes considered in the paper (Sec. 9)."""

    #: Safety Critical: X-by-wire, High Lift, Landing Gear.
    SC = "safety_critical"
    #: Safety Relevant: stability control, driver assistance.
    SR = "safety_relevant"
    #: Non Safety Relevant: comfort, entertainment.
    NSR = "non_safety_relevant"


#: Table 2: automotive criticality levels ``s_i`` per class.
AUTOMOTIVE_CRITICALITY_LEVELS = {
    CriticalityClass.SC: 40,
    CriticalityClass.SR: 6,
    CriticalityClass.NSR: 1,
}

#: Table 2: aerospace criticality level (only SC is on the backbone).
AEROSPACE_CRITICALITY_LEVELS = {
    CriticalityClass.SC: 1,
}

#: Table 2: tolerated transient outages per class, in seconds.  Ranges
#: are represented by their most demanding (lowest) bound, which is the
#: value the tuning must satisfy.
AUTOMOTIVE_TOLERATED_OUTAGE = {
    CriticalityClass.SC: 20e-3,
    CriticalityClass.SR: 100e-3,
    CriticalityClass.NSR: 500e-3,
}

AEROSPACE_TOLERATED_OUTAGE = {
    CriticalityClass.SC: 50e-3,
}


class IsolationMode(enum.Enum):
    """How controllers treat traffic from isolated nodes."""

    #: Paper default: isolated traffic is ignored (validity forced 0).
    IGNORE = "ignore"
    #: Reintegration extension: isolated nodes stay observed so the
    #: diagnostic layer can collect rewards for fault-free behaviour.
    OBSERVE = "observe"


@dataclass(frozen=True)
class ProtocolConfig:
    """Complete configuration of the diagnostic protocol on one cluster.

    Attributes
    ----------
    n_nodes:
        Number of nodes ``N``.
    penalty_threshold:
        ``P`` — a node is isolated when its penalty counter *exceeds* P
        (Alg. 2: ``if penalties[i] > P``).
    reward_threshold:
        ``R`` — penalties are forgotten after R consecutive fault-free
        rounds (Alg. 2: ``if rewards[i] >= R``).
    criticalities:
        Per-node penalty increments ``s_i`` (1-based semantics: entry 0
        corresponds to node 1).
    all_send_curr_round:
        The design-time global predicate of Alg. 1 line 7.  When true
        the diagnosed round is ``k-2``; otherwise ``k-3``.
    startup_rounds:
        First round eligible for diagnosis: analysis is skipped until
        the diagnosed round reaches this index, letting the
        dissemination pipeline fill with genuine observations.
    isolation_mode:
        Whether isolated nodes are ignored (paper default) or observed
        (reintegration extension).
    halt_on_self_isolation:
        Whether a node that sees itself isolated stops transmitting.
        Defaults to the paper behaviour under IGNORE mode; must be
        False for the reintegration extension to be able to observe
        recovery.
    reintegration_reward_threshold:
        If set (together with ``isolation_mode = OBSERVE``), an isolated
        node is readmitted after this many consecutive fault-free
        rounds (Sec. 9, last paragraph).
    """

    n_nodes: int
    penalty_threshold: int
    reward_threshold: int
    criticalities: Sequence[int]
    all_send_curr_round: bool = False
    startup_rounds: int = 1
    isolation_mode: IsolationMode = IsolationMode.IGNORE
    halt_on_self_isolation: Optional[bool] = None
    reintegration_reward_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if len(self.criticalities) != self.n_nodes:
            raise ValueError(
                f"criticalities must have {self.n_nodes} entries, "
                f"got {len(self.criticalities)}")
        if any(c < 1 for c in self.criticalities):
            raise ValueError("criticalities must be >= 1")
        if self.penalty_threshold < 0:
            raise ValueError("penalty_threshold must be >= 0")
        if self.reward_threshold < 1:
            raise ValueError("reward_threshold must be >= 1")
        if (self.reintegration_reward_threshold is not None
                and self.isolation_mode is not IsolationMode.OBSERVE):
            raise ValueError(
                "reintegration requires IsolationMode.OBSERVE so isolated "
                "nodes keep being assessed")

    @property
    def effective_halt_on_self_isolation(self) -> bool:
        """Resolved halt behaviour (defaults by isolation mode)."""
        if self.halt_on_self_isolation is not None:
            return self.halt_on_self_isolation
        return self.isolation_mode is IsolationMode.IGNORE

    def criticality_of(self, node_id: int) -> int:
        """Criticality level ``s_i`` of node ``node_id`` (1-based)."""
        return self.criticalities[node_id - 1]

    def detection_pipeline_rounds(self) -> int:
        """Rounds between a diagnosed round and its analysis round.

        Lemma 1: the health vector computed at round ``k`` refers to
        round ``k-2`` (all nodes disseminate in the formation round) or
        ``k-3`` (send alignment in effect).
        """
        return 2 if self.all_send_curr_round else 3

    def with_updates(self, **changes) -> "ProtocolConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **changes)


def uniform_config(n_nodes: int, penalty_threshold: int = 10,
                   reward_threshold: int = 100, criticality: int = 1,
                   **kwargs) -> ProtocolConfig:
    """A configuration with identical criticality on every node."""
    return ProtocolConfig(
        n_nodes=n_nodes,
        penalty_threshold=penalty_threshold,
        reward_threshold=reward_threshold,
        criticalities=[criticality] * n_nodes,
        **kwargs,
    )


def automotive_config(node_classes: Sequence[CriticalityClass],
                      **kwargs) -> ProtocolConfig:
    """The tuned automotive configuration of Table 2.

    ``node_classes`` assigns each node the criticality class of the
    most critical application it hosts (Sec. 9: "the criticality
    increment for a node was set as the maximum s_i of the applications
    it hosts").
    """
    criticalities = [AUTOMOTIVE_CRITICALITY_LEVELS[c] for c in node_classes]
    return ProtocolConfig(
        n_nodes=len(node_classes),
        penalty_threshold=AUTOMOTIVE_PENALTY_THRESHOLD,
        reward_threshold=PAPER_REWARD_THRESHOLD,
        criticalities=criticalities,
        **kwargs,
    )


def aerospace_config(n_nodes: int, **kwargs) -> ProtocolConfig:
    """The tuned aerospace configuration of Table 2 (all nodes SC)."""
    return ProtocolConfig(
        n_nodes=n_nodes,
        penalty_threshold=AEROSPACE_PENALTY_THRESHOLD,
        reward_threshold=PAPER_REWARD_THRESHOLD,
        criticalities=[AEROSPACE_CRITICALITY_LEVELS[CriticalityClass.SC]] * n_nodes,
        **kwargs,
    )


__all__ = [
    "ProtocolConfig",
    "IsolationMode",
    "CriticalityClass",
    "uniform_config",
    "automotive_config",
    "aerospace_config",
    "PAPER_REWARD_THRESHOLD",
    "AUTOMOTIVE_PENALTY_THRESHOLD",
    "AEROSPACE_PENALTY_THRESHOLD",
    "AUTOMOTIVE_CRITICALITY_LEVELS",
    "AEROSPACE_CRITICALITY_LEVELS",
    "AUTOMOTIVE_TOLERATED_OUTAGE",
    "AEROSPACE_TOLERATED_OUTAGE",
]
