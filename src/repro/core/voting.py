"""Hybrid majority voting (Eqn. 1 of the paper).

The consistent health vector is computed per accused node by hybrid
voting over the corresponding column of the diagnostic matrix.  The
function family comes from Lincoln & Rushby's formally verified hybrid
fault algorithms [18]: erroneous (benign, locally detected) votes ε are
*excluded* before the majority is taken, so benign faults reduce
redundancy instead of corrupting the vote; malicious/asymmetric votes
are outvoted as long as ``N > 2a + 2s + b + 1`` (Lemma 2).

::

             ⎧ ⊥   if |excl(V, ε)| = 0
    H-maj(V) = ⎨ v   if v = maj(excl(V, ε)) and |excl(V, ε)| >= 1
             ⎩ 1   else

The ``else`` branch (no strict majority among the surviving votes)
defaults to 1, i.e. "not faulty": the protocol prefers availability and
leaves discrimination to the penalty/reward layer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .syndrome import EPSILON, Opinion, _Epsilon

#: The undecidable outcome ⊥ of H-maj (no non-ε vote available).
BOTTOM: Optional[int] = None

Vote = Union[Opinion, _Epsilon]


def excl(votes: Sequence[Vote]) -> List[Opinion]:
    """``excl(V, ε)``: the votes with all ε entries removed."""
    return [v for v in votes if v is not EPSILON]


def maj(values: Sequence[Opinion]) -> Optional[Opinion]:
    """Strict majority value of a non-empty binary vote set, else None.

    A value is the majority iff it occurs in more than half of the
    votes; a tie has no majority.
    """
    if not values:
        return None
    zeros = sum(1 for v in values if v == 0)
    ones = len(values) - zeros
    if zeros > ones:
        return 0
    if ones > zeros:
        return 1
    return None


def h_maj(votes: Sequence[Vote]) -> Optional[Opinion]:
    """Hybrid majority H-maj(V) per Eqn. 1.

    Returns 0 (faulty), 1 (not faulty) or :data:`BOTTOM` (= ``None``)
    when every vote is ε — the case where the caller must fall back on
    local information (collision detector / own syndrome, Lemma 3).
    """
    for v in votes:
        if v is not EPSILON and v not in (0, 1):
            raise ValueError(f"votes must be 0, 1 or ε, got {v!r}")
    surviving = excl(votes)
    if not surviving:
        return BOTTOM
    majority = maj(surviving)
    if majority is not None:
        return majority
    # No strict majority among surviving votes: default to "not faulty".
    return 1


def h_maj_explain(votes: Sequence[Vote]):
    """Like :func:`h_maj`, but also names the branch of Eqn. 1 taken.

    Returns ``(decision, reason)`` with ``reason`` one of ``"bottom"``
    (all votes ε), ``"majority"`` (a strict majority survived the ε
    exclusion) or ``"default"`` (no strict majority; the protocol
    defaults to "not faulty").  The decision always equals
    ``h_maj(votes)``; the metered analysis path uses this variant so
    the observability layer can count fallbacks without a second vote.
    """
    for v in votes:
        if v is not EPSILON and v not in (0, 1):
            raise ValueError(f"votes must be 0, 1 or ε, got {v!r}")
    surviving = excl(votes)
    if not surviving:
        return BOTTOM, "bottom"
    majority = maj(surviving)
    if majority is not None:
        return majority, "majority"
    return 1, "default"


def h_maj_counts(ones: int, zeros: int):
    """H-maj from vote *tallies* instead of a vote list.

    ``ones``/``zeros`` are the numbers of surviving (non-ε) 1 and 0
    votes — exactly ``excl(V, ε)`` summarised by two popcounts.  Returns
    the same ``(decision, reason)`` pair as :func:`h_maj_explain`; the
    bitset diagnostic core (:mod:`repro.core.bitmatrix`) decides every
    column from ``int.bit_count()`` tallies through this function, so
    the two representations cannot drift apart.
    """
    if ones < 0 or zeros < 0:
        raise ValueError(f"vote tallies must be >= 0, got {ones}/{zeros}")
    if ones == 0 and zeros == 0:
        return BOTTOM, "bottom"
    if ones > zeros:
        return 1, "majority"
    if zeros > ones:
        return 0, "majority"
    return 1, "default"


def vote_bound_holds(n: int, a: int, s: int, b: int) -> bool:
    """Lemma 2's resilience condition: ``N > 2a + 2s + b + 1`` and ``a <= 1``.

    ``a``, ``s``, ``b`` are the numbers of asymmetric, symmetric
    malicious and benign faulty nodes over one protocol execution.
    """
    return n > 2 * a + 2 * s + b + 1 and a <= 1


def benign_only_bound_holds(n: int, b: int) -> bool:
    """Lemma 3's blackout condition: only benign faults, ``N-1 <= b <= N``."""
    return n - 1 <= b <= n


__all__ = [
    "BOTTOM",
    "Vote",
    "excl",
    "maj",
    "h_maj",
    "h_maj_counts",
    "h_maj_explain",
    "vote_bound_holds",
    "benign_only_bound_holds",
]
