"""Reintegration by observation (the extension sketched in Sec. 9).

The paper's availability analysis concludes that "isolated nodes could
be kept under observation, collecting rewards if a fault-free behavior
is observed and reintegrating the node if a specific reward threshold
for reintegration is reached".  This module implements exactly that
policy on top of :class:`~repro.core.diagnostic.DiagnosticService`:

* the cluster must run with ``IsolationMode.OBSERVE`` (isolated nodes
  are excluded from application traffic and from voting, but their
  slots keep being diagnosed) and ``halt_on_self_isolation = False``
  (an isolated node keeps transmitting so its recovery is observable);
* for every isolated node the policy counts consecutive fault-free
  diagnosed rounds; any fault resets the count;
* when the count reaches the *reintegration reward threshold* the node
  is readmitted: activity restored, counters cleared.

Because the count is driven by the consistent health vector, all
obedient nodes reintegrate the node in the same round — the decision
stays consistent without extra communication.
"""

from __future__ import annotations

from typing import Dict, List

from .diagnostic import DiagnosticService


class ReintegrationPolicy:
    """Observation-based reintegration hook for a diagnostic service.

    Attach with :func:`attach_reintegration`; the policy registers
    itself as a post-update hook and acts after every counter update.
    """

    def __init__(self, reward_threshold: int) -> None:
        if reward_threshold < 1:
            raise ValueError("reward_threshold must be >= 1")
        self.reward_threshold = reward_threshold
        self._observation_rewards: Dict[int, int] = {}

    def __call__(self, service: DiagnosticService, cons_hv: List[int],
                 k: int) -> None:
        n = service.config.n_nodes
        for j in range(1, n + 1):
            if service.active[j - 1] == 1:
                self._observation_rewards.pop(j, None)
                continue
            if cons_hv[j - 1] == 0:
                self._observation_rewards[j] = 0
            else:
                count = self._observation_rewards.get(j, 0) + 1
                if count >= self.reward_threshold:
                    service.reintegrate(j, k)
                    self._observation_rewards.pop(j, None)
                else:
                    self._observation_rewards[j] = count

    def observation_reward(self, node_id: int) -> int:
        """Current consecutive fault-free count for an isolated node."""
        return self._observation_rewards.get(node_id, 0)


def attach_reintegration(service: DiagnosticService) -> ReintegrationPolicy:
    """Attach a reintegration policy per the service's configuration.

    Requires ``config.reintegration_reward_threshold`` to be set (which
    in turn requires ``IsolationMode.OBSERVE``, enforced by the config).
    """
    threshold = service.config.reintegration_reward_threshold
    if threshold is None:
        raise ValueError(
            "config.reintegration_reward_threshold must be set to attach "
            "a reintegration policy")
    policy = ReintegrationPolicy(threshold)
    service.post_update_hooks.append(policy)
    return policy


__all__ = ["ReintegrationPolicy", "attach_reintegration"]
