"""Local syndromes and diagnostic matrices (Sec. 5).

A *local syndrome* is a binary ``N``-tuple: element ``j`` is node
``i``'s local opinion on the message sent by node ``j`` in the slot of
interest (1 = received correctly, 0 = locally detected as faulty).
Syndromes are exchanged inside the diagnostic messages ``dm_i``.

A *diagnostic matrix* collects the aligned local syndromes received for
one diagnosed round: row ``i`` is the syndrome sent by node ``i`` (or
the special error value ε when that syndrome itself arrived corrupted),
column ``j`` is the vector of opinions about node ``j``.

Indexing convention: syndromes are plain tuples of length ``N``; the
opinion about node ``j`` lives at index ``j - 1``.  Helper accessors
keep the 1-based paper notation readable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


class _Epsilon:
    """The paper's special error value ε (unavailable/corrupted syndrome)."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"

    def __deepcopy__(self, memo) -> "_Epsilon":
        return self

    def __reduce__(self):
        return (_Epsilon, ())


#: Singleton ε: assigned to local syndromes whose validity bit is 0.
EPSILON = _Epsilon()

#: A syndrome entry: 0 (faulty), 1 (correct) — ε appears only at the
#: matrix level, standing for a whole missing row.
Opinion = int
Syndrome = Tuple[Opinion, ...]
Row = Union[Syndrome, _Epsilon]


def make_syndrome(bits: Sequence[int]) -> Syndrome:
    """Validate and freeze a local syndrome.

    Entries are normalised to canonical ``int`` 0/1: values that merely
    *compare equal* to 0/1 (``True``, ``1.0``) would otherwise leak
    into traces and serialise differently (``true`` vs ``1`` in JSON),
    breaking byte-identity contracts downstream.
    """
    out = tuple(bits)
    needs_normalising = False
    for bit in out:
        if bit not in (0, 1):
            raise ValueError(f"syndrome entries must be 0/1, got {bit!r}")
        if type(bit) is not int:
            needs_normalising = True
    if needs_normalising:
        return tuple(1 if bit == 1 else 0 for bit in out)
    return out


def opinion_about(syndrome: Syndrome, node_id: int) -> Opinion:
    """1-based accessor: the syndrome's opinion about ``node_id``."""
    return syndrome[node_id - 1]


#: Interning caches for disseminated syndromes, scoped per syndrome
#: length so clusters of different N never compete for the same budget
#: (bounded; see :func:`intern_syndrome`).
_INTERNED: Dict[int, Dict[Syndrome, Syndrome]] = {}
_INTERN_LIMIT = 4096
_INTERN_EVICTIONS = 0


def intern_syndrome(syndrome: Syndrome, evictions=None) -> Syndrome:
    """Return a canonical shared tuple equal to ``syndrome``.

    In a healthy cluster every node disseminates the same all-ones
    syndrome every round; interning makes those tuples
    reference-identical, so the diagnostic matrix can detect a uniform
    round by pointer comparison and repeated rounds do not allocate
    fresh tuples.

    The cache is scoped **per syndrome length**: a long-lived process
    that simulates clusters of different N keeps one bounded cache per
    N instead of letting one size exhaust the budget of another.  When
    a length's cache fills up (adversarial payload diversity), that
    epoch is dropped wholesale and interning restarts — only a missed
    optimisation, counted in :func:`intern_cache_stats` and, when the
    caller passes a counter-like ``evictions`` instrument, in the
    observability layer (``syndrome.intern_evictions``).
    """
    global _INTERN_EVICTIONS
    by_length = _INTERNED.get(len(syndrome))
    if by_length is None:
        by_length = _INTERNED[len(syndrome)] = {}
    cached = by_length.get(syndrome)
    if cached is not None:
        return cached
    if len(by_length) >= _INTERN_LIMIT:
        by_length.clear()
        _INTERN_EVICTIONS += 1
        if evictions is not None:
            evictions.inc()
    by_length[syndrome] = syndrome
    return syndrome


def clear_intern_cache(length: Optional[int] = None) -> None:
    """Drop interned syndromes — all lengths, or one specific length.

    Call from cluster teardown (or tests) to return the process to a
    cold-cache state; interning restarts transparently afterwards.
    """
    if length is None:
        _INTERNED.clear()
    else:
        _INTERNED.pop(length, None)


def intern_cache_stats() -> Dict[str, int]:
    """Occupancy and saturation of the interning caches.

    ``lengths`` is the number of distinct syndrome lengths seen,
    ``entries`` the total interned tuples across them, ``evictions``
    the number of epoch resets since process start.
    """
    return {
        "lengths": len(_INTERNED),
        "entries": sum(len(c) for c in _INTERNED.values()),
        "evictions": _INTERN_EVICTIONS,
    }


def is_valid_syndrome(payload: Any, n_nodes: int) -> bool:
    """Whether a received payload parses as a well-formed syndrome.

    Guards the aggregation phase against garbage from non-obedient
    nodes whose frames pass the controller's syntactic checks: a
    malformed payload is treated like ε (the node contributed no usable
    opinion).
    """
    if not isinstance(payload, (tuple, list)) or len(payload) != n_nodes:
        return False
    # Equivalent to ``all(bit in (0, 1) for bit in payload)`` — count()
    # uses the same __eq__ semantics (True counts as 1, 0.0 as 0) but
    # runs the scan in C.  No entry can equal both 0 and 1.
    return payload.count(0) + payload.count(1) == n_nodes


def parse_tagged_syndrome(payload: Any, n_nodes: int):
    """Parse a round-tagged diagnostic message ``(round, syndrome)``.

    The dynamic-scheduling variant of the protocol makes its messages
    self-describing: the payload names the round its observations refer
    to.  Returns ``(round, syndrome_tuple)`` or ``None`` for anything
    malformed (treated as ε by the aggregation).
    """
    if not isinstance(payload, (tuple, list)) or len(payload) != 2:
        return None
    about_round, syndrome = payload
    if not isinstance(about_round, int) or isinstance(about_round, bool):
        return None
    if not is_valid_syndrome(syndrome, n_nodes):
        return None
    return (about_round, tuple(syndrome))


class DiagnosticMatrix:
    """The aggregated ``N × N`` opinion matrix for one diagnosed round."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self._rows: Dict[int, Row] = {i: EPSILON for i in range(1, n_nodes + 1)}
        self._uniform_row: Optional[Syndrome] = None
        # Columns are pure functions of the rows; cache them so one
        # analysis (or repeated inspection) stops re-scanning the rows
        # N times.  Invalidated by set_row.
        self._columns: Dict[int, List[Union[Opinion, _Epsilon]]] = {}

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "DiagnosticMatrix":
        """Build a matrix from rows ordered by sender ID (1..N)."""
        matrix = cls(len(rows))
        for i, row in enumerate(rows, start=1):
            matrix.set_row(i, row)
        return matrix

    @classmethod
    def uniform(cls, n_nodes: int, row: Sequence[int]) -> "DiagnosticMatrix":
        """Build a matrix whose every row is the same syndrome.

        Fast-path constructor for the common fault-free round: the row
        is validated once and shared across all senders, and
        :meth:`uniform_row` lets the analysis skip the per-column vote
        (a uniform matrix trivially yields ``cons_hv == row``).
        """
        row = make_syndrome(row)
        if len(row) != n_nodes:
            raise ValueError(
                f"syndrome length {len(row)} != n_nodes {n_nodes}")
        matrix = cls(n_nodes)
        rows = matrix._rows
        for i in range(1, n_nodes + 1):
            rows[i] = row
        matrix._uniform_row = row
        return matrix

    def uniform_row(self) -> Optional[Syndrome]:
        """The shared syndrome if built via :meth:`uniform`, else ``None``.

        Any subsequent :meth:`set_row` clears the marker.
        """
        return self._uniform_row

    def set_row(self, sender: int, row: Row) -> None:
        """Install the syndrome sent by ``sender`` (or ε)."""
        self._check_node(sender)
        if row is not EPSILON:
            row = make_syndrome(row)
            if len(row) != self.n_nodes:
                raise ValueError(
                    f"syndrome length {len(row)} != n_nodes {self.n_nodes}")
        self._rows[sender] = row
        self._uniform_row = None
        if self._columns:
            self._columns.clear()

    def row(self, sender: int) -> Row:
        """The syndrome sent by ``sender`` (or ε)."""
        self._check_node(sender)
        return self._rows[sender]

    def column(self, accused: int) -> List[Union[Opinion, _Epsilon]]:
        """All opinions about ``accused``, excluding its self-opinion.

        The paper discards the accused node's opinion about itself
        ("considered unreliable ... to tolerate asymmetric faults"), so
        the column is an ``(N-1)``-tuple in sender-ID order.

        The returned list is cached on the matrix (and invalidated by
        :meth:`set_row`); callers must treat it as read-only.
        """
        self._check_node(accused)
        cached = self._columns.get(accused)
        if cached is not None:
            return cached
        column: List[Union[Opinion, _Epsilon]] = []
        for sender in range(1, self.n_nodes + 1):
            if sender == accused:
                continue
            row = self._rows[sender]
            if row is EPSILON:
                column.append(EPSILON)
            else:
                column.append(opinion_about(row, accused))
        self._columns[accused] = column
        return column

    def disagree_mask(self, cons_hv: Sequence[int]) -> int:
        """Bitmask of senders whose row disagrees with ``cons_hv``.

        Bit ``j-1`` is set iff sender ``j``'s syndrome differs from the
        consistent health vector in any position other than ``j`` (the
        self-opinion is unreliable and ignored).  ε rows never disagree
        — their senders are already being accused by local detection.
        The membership variant's minority-accusation scan is exactly
        this predicate.
        """
        n = self.n_nodes
        mask = 0
        for j in range(1, n + 1):
            row = self._rows[j]
            if row is EPSILON:
                continue
            for m in range(1, n + 1):
                if m != j and row[m - 1] != cons_hv[m - 1]:
                    mask |= 1 << (j - 1)
                    break
        return mask

    def epsilon_rows(self) -> int:
        """Number of rows that are ε (missing/corrupted syndromes).

        Zero in a fault-free round; the observability layer histograms
        this per analysis as a cheap proxy for syndrome-channel health.
        """
        rows = self._rows
        return sum(1 for i in rows if rows[i] is EPSILON)

    def render(self) -> str:
        """Human-readable rendering in the style of the paper's Table 1."""
        header = "accuser | " + " ".join(f"{j:>2}" for j in range(1, self.n_nodes + 1))
        lines = [header, "-" * len(header)]
        for sender in range(1, self.n_nodes + 1):
            row = self._rows[sender]
            if row is EPSILON:
                cells = " ".join(f"{'ε':>2}" for _ in range(self.n_nodes))
            else:
                cells = " ".join(
                    f"{'-':>2}" if j == sender else f"{row[j - 1]:>2}"
                    for j in range(1, self.n_nodes + 1))
            lines.append(f"node {sender:>2} | {cells}")
        return "\n".join(lines)

    def _check_node(self, node_id: int) -> None:
        if not 1 <= node_id <= self.n_nodes:
            raise ValueError(f"node must be in 1..{self.n_nodes}, got {node_id}")


__all__ = [
    "EPSILON",
    "parse_tagged_syndrome",
    "Opinion",
    "Syndrome",
    "Row",
    "make_syndrome",
    "opinion_about",
    "intern_syndrome",
    "clear_intern_cache",
    "intern_cache_stats",
    "is_valid_syndrome",
    "DiagnosticMatrix",
]
