"""Read and send alignment (Alg. 1 lines 3-10, Fig. 2).

In a TDMA scheme, a job reading the interface variables mid-round sees
a *mixed* snapshot: variables whose sending slot already passed hold
values from the current round ``k``, the rest hold values from round
``k-1``.  Because node schedules are unconstrained, different
diagnostic jobs would otherwise operate on differently-fresh data.

*Read alignment* reconstructs, from the current snapshot and a buffered
previous snapshot, the vector of values all sent in round ``k-1``:
entries ``1..l_i`` (sent in round ``k``) are replaced by their buffered
round ``k-1`` predecessors, entries ``l_i+1..N`` are taken from the
current snapshot (they were sent in round ``k-1``).

*Send alignment* decides which local syndrome to write to the interface
state so that every syndrome *sent* in a given round refers to the same
diagnosed round, no matter when each node's job runs:

* if **all** nodes can disseminate in their formation round
  (``∀j: send_curr_round_j``, a design-time property), everyone writes
  the fresh aligned syndrome — saving one round of latency;
* otherwise a node that *can* send in the current round writes the
  *previous* round's aligned syndrome (others' fresh syndromes would
  only go out next round), while a node that cannot writes the fresh
  one (it will be transmitted next round anyway).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")


def read_align(prev: Sequence[T], curr: Sequence[T], l: int) -> List[T]:
    """Combine buffered and current snapshots into round-aligned values.

    ``prev`` and ``curr`` are N-element sequences indexed by sender
    (0-based internally: index ``j-1`` for node ``j``); ``l`` is the
    node's ``l_i``.  Returns the vector of values sent in the previous
    round: ``prev[0:l] + curr[l:N]``.
    """
    n = len(curr)
    if len(prev) != n:
        raise ValueError(f"prev/curr length mismatch: {len(prev)} != {n}")
    if not 0 <= l <= n:
        raise ValueError(f"l must be in 0..{n}, got {l}")
    return list(prev[:l]) + list(curr[l:])


def select_dissemination(al_ls: Sequence[T], prev_al_ls: Sequence[T],
                         send_curr_round: bool,
                         all_send_curr_round: bool) -> List[T]:
    """Send alignment: the syndrome to write to the interface state.

    Implements Alg. 1 lines 7-10 exactly:

    * ``all_send_curr_round`` → write ``al_ls`` (line 7);
    * else if ``send_curr_round`` → write ``prev_al_ls`` (lines 8-9);
    * else → write ``al_ls`` (line 10).
    """
    if all_send_curr_round:
        return list(al_ls)
    if send_curr_round:
        return list(prev_al_ls)
    return list(al_ls)


def diagnosed_round(analysis_round: int, all_send_curr_round: bool) -> int:
    """The round whose faults the health vector of ``analysis_round`` covers.

    Lemma 1: ``k - 2`` when every node disseminates in its formation
    round, ``k - 3`` otherwise.
    """
    return analysis_round - (2 if all_send_curr_round else 3)


__all__ = ["read_align", "select_dissemination", "diagnosed_round"]
