"""Declarative results pipeline over campaign documents and the store.

The offline half of the repo's production story: campaign runs persist
content-addressed results and deterministic ``--out`` documents; this
package turns those into consumable artefacts without re-running
anything.

* :mod:`repro.results.tables` — :class:`TableSpec`/:class:`SeriesSpec`
  declarations the experiment modules export, materialised into
  renderer-neutral :class:`Table`/:class:`Series` values;
* :mod:`repro.results.render` — ASCII (byte-identical to the historic
  experiment verbs), GitHub markdown, LaTeX, CSV, HTML and JSON
  renderers;
* :mod:`repro.results.source` — campaign-document loading (schemas
  ``repro-campaign-result/1`` and ``/2``), live store lookups by full
  spec digest, document fingerprints;
* :mod:`repro.results.diff` — digest-keyed cross-campaign diff naming
  the diverging spec parameters, cell-by-cell table comparison, store
  provenance;
* :mod:`repro.results.plots` — matplotlib emitters behind the same
  soft-dependency gate :mod:`repro.vec` uses for numpy;
* :mod:`repro.results.cache` — memoized derived values keyed by
  document fingerprint, persisted in the result store.

The CLI surface is ``repro-diag results render|diff|plot``.

Only the dependency-light table/render layer is re-exported here —
``source``/``diff`` import the campaign layer (which itself declares
tables), so they are imported by their full module path.
"""

from .render import (
    FORMATS,
    render_ascii,
    render_csv,
    render_html,
    render_json_tables,
    render_latex,
    render_markdown,
    render_tables,
)
from .tables import Column, Series, SeriesSpec, Table, TableSpec

__all__ = [
    "FORMATS",
    "Column",
    "Series",
    "SeriesSpec",
    "Table",
    "TableSpec",
    "render_ascii",
    "render_csv",
    "render_html",
    "render_json_tables",
    "render_latex",
    "render_markdown",
    "render_tables",
]
