"""Matplotlib plot emitters — a soft dependency, gated like numpy.

Mirrors how :mod:`repro.vec` treats numpy: importing this module never
raises; :data:`MATPLOTLIB_AVAILABLE` says whether plotting works, and
:func:`require_matplotlib` raises :class:`PlotUnavailableError` with an
actionable message *before* any figure work happens, so the CLI can
exit 2 cleanly instead of surfacing an ImportError from inside a
renderer.

The emitters consume the materialised
:class:`~repro.results.tables.Series` values the campaign definitions
declare — tradeoff curves (Fig. 3) and rare-event trend lines — and
write one file per series with a deterministic name.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .tables import Series


class PlotUnavailableError(RuntimeError):
    """A plot was requested but matplotlib is not installed.

    Raised before any figure is created so callers (CLI, future HTTP
    service) can report a clean actionable message, mirroring
    :class:`repro.vec.BackendUnavailableError` for numpy.
    """


try:  # pragma: no cover - exercised by the CI soft-dep job
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as _plt

    _MATPLOTLIB_ERROR: Optional[ImportError] = None
except ImportError as exc:
    _plt = None
    _MATPLOTLIB_ERROR = exc

#: Whether plot emitters can run in this environment.
MATPLOTLIB_AVAILABLE = _MATPLOTLIB_ERROR is None


def require_matplotlib() -> None:
    """Raise :class:`PlotUnavailableError` unless matplotlib works."""
    if not MATPLOTLIB_AVAILABLE:
        raise PlotUnavailableError(
            "plot emission requires matplotlib, which is not installed "
            f"(import failed: {_MATPLOTLIB_ERROR}); install matplotlib or "
            "use `results render` for text formats")


def _spans_decades(values: Sequence[float]) -> bool:
    positive = [v for v in values if v > 0]
    return bool(positive) and max(positive) / min(positive) >= 1e3


def plot_series(series: Series, path: str) -> str:  # pragma: no cover
    """Write one series as a line plot; returns the path written.

    Covered by the CI results-pipeline job, which installs matplotlib;
    the tier-1/coverage environments run without it and only exercise
    the gate above.
    """
    require_matplotlib()
    fig, ax = _plt.subplots(figsize=(7.0, 4.5))
    xs_all: List[float] = []
    ys_all: List[float] = []
    for label, points in series.curves:
        xs = [x for x, _y in points]
        ys = [y for _x, y in points]
        xs_all.extend(xs)
        ys_all.extend(ys)
        ax.plot(xs, ys, marker="o", label=label)
    if _spans_decades(xs_all):
        ax.set_xscale("log")
    if _spans_decades(ys_all):
        ax.set_yscale("log")
    ax.set_xlabel(series.x_label)
    ax.set_ylabel(series.y_label)
    if series.title:
        ax.set_title(series.title)
    if len(series.curves) > 1:
        ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path)
    _plt.close(fig)
    return path


def emit_plots(series_list: Sequence[Series], out_dir: str,
               fmt: str = "png") -> List[str]:  # pragma: no cover
    """Write every series to ``out_dir`` as ``<name>.<fmt>``."""
    require_matplotlib()
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for series in series_list:
        path = os.path.join(out_dir, f"{series.name}.{fmt}")
        paths.append(plot_series(series, path))
    return paths


__all__ = [
    "MATPLOTLIB_AVAILABLE",
    "PlotUnavailableError",
    "emit_plots",
    "plot_series",
    "require_matplotlib",
]
