"""Renderers: one :class:`~repro.results.tables.Table` in, text out.

Every renderer consumes the *same* materialised table — cells are
formatted once by :func:`~repro.analysis.reporting.format_cell` at
build time — so the ASCII, markdown, LaTeX and CSV outputs can never
disagree on a number, only on markup:

* ``ascii`` delegates to :func:`repro.analysis.reporting.render_table`,
  which is what the experiment verbs have always printed — routing a
  verb through a :class:`TableSpec` is byte-identical to its historic
  inline formatting;
* ``markdown`` emits a GitHub pipe table (cells escaped so a literal
  ``|`` cannot break a row);
* ``latex`` emits a self-contained ``table``/``tabular`` environment
  (cells escaped so ``&``/``%``/``_`` cannot corrupt it);
* ``csv`` emits machine-readable rows through the stdlib writer with
  ``\n`` line endings (byte-stable for golden files);
* ``html`` emits a self-contained ``<table>`` element (cells escaped
  with :func:`html.escape`) — what the HTTP service serves for
  ``?format=html`` and ``results render --format html`` writes;
* ``json`` emits the stable sorted-key document the rest of the repo
  uses for golden artefacts.
"""

from __future__ import annotations

import csv
import html as _html
import io
import json
from typing import Iterable, List, Sequence

from ..analysis.reporting import (
    escape_latex_cell,
    escape_markdown_cell,
    render_table,
)
from .tables import Table

#: Formats accepted by ``repro-diag results render --format``.
FORMATS = ("ascii", "markdown", "latex", "csv", "html", "json")


def render_ascii(table: Table) -> str:
    """The historic fixed-width table, footer lines appended."""
    text = render_table(table.headers, table.rows, title=table.title)
    return "\n".join([text, *table.footer])


def render_markdown(table: Table) -> str:
    """A GitHub-flavoured markdown pipe table."""
    lines: List[str] = []
    if table.title:
        lines.append(f"### {table.title}")
        lines.append("")
    headers = [escape_markdown_cell(h) for h in table.headers]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in table.rows:
        cells = [escape_markdown_cell(c) for c in row]
        lines.append("| " + " | ".join(cells) + " |")
    for note in table.footer:
        lines.append("")
        lines.append(f"*{escape_markdown_cell(note)}*")
    return "\n".join(lines)


def render_latex(table: Table) -> str:
    """A paste-ready ``table`` environment (no package dependencies)."""
    lines = [r"\begin{table}[ht]", r"\centering"]
    if table.title:
        lines.append(rf"\caption{{{escape_latex_cell(table.title)}}}")
    spec = "l" * len(table.headers)
    lines.append(rf"\begin{{tabular}}{{{spec}}}")
    lines.append(r"\hline")
    lines.append(" & ".join(escape_latex_cell(h)
                            for h in table.headers) + r" \\")
    lines.append(r"\hline")
    for row in table.rows:
        lines.append(" & ".join(escape_latex_cell(c) for c in row) + r" \\")
    lines.append(r"\hline")
    lines.append(r"\end{tabular}")
    for note in table.footer:
        lines.append(rf"\par\small {escape_latex_cell(note)}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def render_csv(table: Table) -> str:
    """Header + data rows; title/footer travel as ``#`` comment lines."""
    buf = io.StringIO()
    if table.title:
        buf.write(f"# {table.title}\n")
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(table.headers)
    writer.writerows(table.rows)
    for note in table.footer:
        buf.write(f"# {note}\n")
    return buf.getvalue().rstrip("\n")


def render_html(table: Table) -> str:
    """A self-contained ``<table>`` element, no styling dependencies.

    The title travels as ``<caption>``, footer notes as a
    ``colspan``-wide ``<tfoot>`` row; every cell goes through
    :func:`html.escape`, so table content can never inject markup.
    """
    cols = len(table.headers)
    lines = ['<table class="repro-results">']
    if table.title:
        lines.append(f"  <caption>{_html.escape(table.title)}</caption>")
    lines.append("  <thead>")
    lines.append("    <tr>" + "".join(f"<th>{_html.escape(h)}</th>"
                                      for h in table.headers) + "</tr>")
    lines.append("  </thead>")
    lines.append("  <tbody>")
    for row in table.rows:
        lines.append("    <tr>" + "".join(f"<td>{_html.escape(c)}</td>"
                                          for c in row) + "</tr>")
    lines.append("  </tbody>")
    if table.footer:
        lines.append("  <tfoot>")
        for note in table.footer:
            lines.append(f'    <tr><td colspan="{cols}"><em>'
                         f"{_html.escape(note)}</em></td></tr>")
        lines.append("  </tfoot>")
    lines.append("</table>")
    return "\n".join(lines)


def render_json_tables(tables: Sequence[Table]) -> str:
    """The stable JSON document for a table collection."""
    doc = {"schema": "repro-results/1",
           "tables": [t.to_dict() for t in tables]}
    return json.dumps(doc, sort_keys=True, indent=2)


_SINGLE = {
    "ascii": render_ascii,
    "markdown": render_markdown,
    "latex": render_latex,
    "csv": render_csv,
    "html": render_html,
}


def render_tables(tables: Iterable[Table], fmt: str = "ascii") -> str:
    """Render a table collection in one format.

    Tables are separated by a blank line; ``json`` emits one document
    covering all of them.
    """
    tables = list(tables)
    if fmt == "json":
        return render_json_tables(tables)
    try:
        renderer = _SINGLE[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; formats: {FORMATS}") from None
    return "\n\n".join(renderer(t) for t in tables)


__all__ = [
    "FORMATS",
    "render_ascii",
    "render_csv",
    "render_html",
    "render_json_tables",
    "render_latex",
    "render_markdown",
    "render_tables",
]
