"""Sources of renderable results: campaign documents and live stores.

The pipeline consumes two inputs:

* a ``repro-diag campaign run --out`` document (schema
  ``repro-campaign-result/1`` or ``/2``) — :func:`load_document`
  validates and wraps it, :func:`tables_for_document` turns it into
  materialised tables.  ``/2`` documents embed their tables and render
  with zero simulation imports; ``/1`` documents (and ``/2`` documents
  asked for a re-aggregation) rebuild the named campaign's definition
  from the stored ``params`` and re-run its aggregate over the decoded
  per-task payloads;
* a live :class:`~repro.store.ResultStore` — :func:`results_from_store`
  fetches a definition's results by full spec digest without executing
  anything, so ``repro-diag results render validate --store DIR``
  renders straight from cache.

:func:`document_fingerprint` hashes the semantic content (campaign,
params, task payloads — not the schema tag or embedded tables), so a
``/1`` and ``/2`` document of the same campaign share a fingerprint:
the key the derived-value cache memoises renders under.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..store.result_store import decode_value, store_key
from .tables import Table


class DocumentError(ValueError):
    """The input is not a usable campaign result document."""


@dataclass(frozen=True)
class CampaignDocument:
    """A parsed ``campaign run --out`` document."""

    schema: str
    campaign: str
    params: Dict[str, Any]
    tasks: Tuple[Dict[str, Any], ...]
    metrics: Dict[str, Any]
    #: Embedded tables (``/2`` documents only, else None).
    tables: Optional[Tuple[Table, ...]] = None

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(t["label"] for t in self.tasks)

    @property
    def failed_labels(self) -> Tuple[str, ...]:
        return tuple(t["label"] for t in self.tasks if "error" in t)

    def results(self) -> List[Any]:
        """Decoded per-task payloads, in task order.

        Raises :class:`DocumentError` if any task failed — an
        aggregate over partial results would silently misreport.
        """
        failed = self.failed_labels
        if failed:
            raise DocumentError(
                f"campaign {self.campaign!r} has {len(failed)} failed "
                f"task(s): {', '.join(failed[:5])}")
        return [decode_value(t["result"]["enc"], t["result"]["payload"])
                for t in self.tasks]


def parse_document(data: Dict[str, Any]) -> CampaignDocument:
    """Validate and wrap an already-parsed document dict."""
    from ..campaign.definitions import COMPATIBLE_RESULT_SCHEMAS

    if not isinstance(data, dict):
        raise DocumentError("campaign document must be a JSON object")
    schema = data.get("schema")
    if schema not in COMPATIBLE_RESULT_SCHEMAS:
        raise DocumentError(
            f"unsupported document schema {schema!r}; expected one of "
            f"{COMPATIBLE_RESULT_SCHEMAS}")
    tables = None
    if data.get("tables") is not None:
        tables = tuple(Table.from_dict(t) for t in data["tables"])
    return CampaignDocument(
        schema=schema,
        campaign=data.get("campaign", ""),
        params=dict(data.get("params", {})),
        tasks=tuple(data.get("tasks", ())),
        metrics=dict(data.get("metrics", {})),
        tables=tables,
    )


def load_document(path: str) -> CampaignDocument:
    """Read and validate a document from a JSON file (or ``-``)."""
    import sys

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise DocumentError(f"{path}: not valid JSON: {exc}") from exc
    return parse_document(data)


def document_fingerprint(doc: CampaignDocument) -> str:
    """A stable hash of the document's semantic content.

    Embedded tables and the schema tag are excluded: a ``/1`` and a
    ``/2`` document of the same campaign run fingerprint identically,
    so cached derived values survive a schema upgrade.
    """
    canonical = {
        "campaign": doc.campaign,
        "params": doc.params,
        "tasks": [
            {k: t[k] for k in ("label", "digest", "key", "result", "error")
             if k in t}
            for t in doc.tasks
        ],
    }
    blob = json.dumps(canonical, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def rebuild_definition(doc: CampaignDocument):
    """The named campaign definition a document was produced by."""
    from ..campaign.definitions import definition_for_params

    return definition_for_params(doc.campaign, doc.params)


def tables_for_document(doc: CampaignDocument,
                        prefer_embedded: bool = True) -> List[Table]:
    """Materialised tables for a document.

    ``/2`` documents return their embedded tables directly (no
    simulation-layer imports, no aggregation); otherwise the named
    campaign's definition is rebuilt from ``params`` and its declared
    tables are built over the decoded results.  Documents from ad-hoc
    spec files (no declared tables) fall back to a generic per-task
    table so every document renders.
    """
    if prefer_embedded and doc.tables is not None:
        return list(doc.tables)
    try:
        definition = rebuild_definition(doc)
    except ValueError:
        return [generic_task_table(doc)]
    if not definition.tables:
        return [generic_task_table(doc)]
    value = definition.aggregate(doc.results())
    return definition.build_tables(value)


def series_for_document(doc: CampaignDocument) -> List[Any]:
    """Materialised plot series for a document (may be empty)."""
    try:
        definition = rebuild_definition(doc)
    except ValueError:
        return []
    if not definition.series:
        return []
    value = definition.aggregate(doc.results())
    return [spec.build(value) for spec in definition.series]


def generic_task_table(doc: CampaignDocument) -> Table:
    """A label/digest/result table any campaign document supports."""
    rows = []
    for task in doc.tasks:
        if "error" in task:
            shown = (f"error: {task['error']['type']}: "
                     f"{task['error']['message']}")
        else:
            shown = str(decode_value(task["result"]["enc"],
                                     task["result"]["payload"]))
        rows.append((task["label"], task["digest"], shown))
    return Table(
        name="tasks",
        title=f"Campaign {doc.campaign!r}: per-task results",
        headers=("label", "digest", "result"),
        rows=tuple((str(a), str(b), str(c)) for a, b, c in rows),
    )


def results_from_store(definition, store) -> List[Any]:
    """A definition's results fetched from a store by content address.

    Raises :class:`DocumentError` naming the missing labels if the
    store does not hold every task (nothing is executed here).
    """
    keyed = [(label, store_key(spec))
             for label, spec in definition.labeled_specs]
    found = store.get_many([key for _label, key in keyed])
    # Campaign payloads wrap the reduced result with its metrics
    # snapshot (see repro.campaign.engine._payload); only the result
    # feeds the aggregate.
    payloads = {key: value for key, value in found.items()
                if isinstance(value, dict) and "result" in value}
    missing = [label for label, key in keyed if key not in payloads]
    if missing:
        raise DocumentError(
            f"store is missing {len(missing)}/{len(keyed)} result(s) for "
            f"campaign {definition.name!r} (first missing: {missing[0]!r}); "
            f"run `repro-diag campaign run {definition.name}` first")
    return [payloads[key]["result"] for _label, key in keyed]


def tables_from_store(definition, store) -> List[Table]:
    """Build a definition's tables from cached results only."""
    value = definition.aggregate(results_from_store(definition, store))
    return definition.build_tables(value)


__all__ = [
    "CampaignDocument",
    "DocumentError",
    "document_fingerprint",
    "generic_task_table",
    "load_document",
    "parse_document",
    "rebuild_definition",
    "results_from_store",
    "series_for_document",
    "tables_for_document",
    "tables_from_store",
]
