"""Declarative result tables and series over campaign aggregates.

A :class:`TableSpec` states *what* a table shows — named columns with
extractor callables over row objects, a ``rows`` reducer over the
campaign's aggregate value, an optional title and footer — without
committing to any output format.  :meth:`TableSpec.build` materialises
it into a :class:`Table`: a frozen, renderer-neutral value whose cells
are already :func:`~repro.analysis.reporting.format_cell` strings, so

* every renderer (ASCII, markdown, LaTeX, CSV, JSON) consumes the same
  cells and can only disagree on markup, never on numbers;
* a built table serialises losslessly (``to_dict``/``from_dict``) and
  can be embedded into ``repro-campaign-result/2`` documents, making
  stored campaign results self-describing.

:class:`SeriesSpec`/:class:`Series` are the plot-facing twins: labelled
``(x, y)`` curves for the matplotlib emitters in
:mod:`repro.results.plots`.

The experiment modules declare their paper tables as module-level
``TableSpec`` constants; :class:`~repro.campaign.CampaignDefinition`
carries them so the CLI, the ``--out`` document and the ``results``
verb family all render through the same declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from ..analysis.reporting import format_cell


def _identity_rows(value: Any) -> Sequence[Any]:
    return value


@dataclass(frozen=True)
class Column:
    """One table column: a header plus an extractor over a row object."""

    header: str
    cell: Callable[[Any], Any]


@dataclass(frozen=True)
class Table:
    """A materialised table: pure data, every cell already formatted."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[str, ...], ...]
    title: Optional[str] = None
    footer: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (embedded in ``repro-campaign-result/2``)."""
        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "footer": list(self.footer),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table":
        """Invert :meth:`to_dict` (the ``/2`` compat reader)."""
        return cls(
            name=data["name"],
            headers=tuple(data["headers"]),
            rows=tuple(tuple(str(c) for c in row) for row in data["rows"]),
            title=data.get("title"),
            footer=tuple(data.get("footer", ())),
        )


@dataclass(frozen=True)
class TableSpec:
    """Declarative table over a campaign aggregate value.

    ``rows`` maps the aggregate to row objects (default: the aggregate
    *is* the row sequence); each :class:`Column` extracts one display
    value per row; ``title`` may be a string or a callable over the
    aggregate; ``footer`` yields trailing lines (e.g. the validation
    campaign's ``all passed:`` verdict).
    """

    name: str
    columns: Tuple[Column, ...]
    rows: Callable[[Any], Sequence[Any]] = field(default=_identity_rows)
    title: Union[None, str, Callable[[Any], str]] = None
    footer: Optional[Callable[[Any], Sequence[str]]] = None

    def build(self, value: Any) -> Table:
        """Materialise against one aggregate value."""
        title = self.title(value) if callable(self.title) else self.title
        rows = tuple(
            tuple(format_cell(col.cell(row)) for col in self.columns)
            for row in self.rows(value))
        footer = tuple(self.footer(value)) if self.footer is not None else ()
        return Table(name=self.name,
                     headers=tuple(col.header for col in self.columns),
                     rows=rows, title=title, footer=footer)


@dataclass(frozen=True)
class Series:
    """Materialised plot data: labelled curves of ``(x, y)`` points."""

    name: str
    x_label: str
    y_label: str
    curves: Tuple[Tuple[str, Tuple[Tuple[float, float], ...]], ...]
    title: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form, symmetric with :meth:`Table.to_dict`."""
        return {
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "curves": [{"label": label, "points": [list(p) for p in pts]}
                       for label, pts in self.curves],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Series":
        """Invert :meth:`to_dict`."""
        return cls(
            name=data["name"],
            x_label=data["x_label"],
            y_label=data["y_label"],
            curves=tuple(
                (c["label"], tuple((float(x), float(y))
                                   for x, y in c["points"]))
                for c in data["curves"]),
            title=data.get("title"),
        )


@dataclass(frozen=True)
class SeriesSpec:
    """Declarative plot series over a campaign aggregate value.

    ``curves`` maps the aggregate to ``{label: [(x, y), ...]}``.
    """

    name: str
    x_label: str
    y_label: str
    curves: Callable[[Any], Dict[str, Sequence[Tuple[float, float]]]]
    title: Union[None, str, Callable[[Any], str]] = None

    def build(self, value: Any) -> Series:
        """Materialise against one aggregate value."""
        title = self.title(value) if callable(self.title) else self.title
        curves = tuple(
            (label, tuple((float(x), float(y)) for x, y in points))
            for label, points in self.curves(value).items())
        return Series(name=self.name, x_label=self.x_label,
                      y_label=self.y_label, curves=curves, title=title)


__all__ = ["Column", "Series", "SeriesSpec", "Table", "TableSpec"]
