"""Memoized derived values over campaign documents.

Re-rendering a large sweep should cost O(bytes read), not O(re-running
the aggregation): rendered strings and built tables are derived purely
from a document's semantic content, so they are cached under

    <document fingerprint>:derived.<kind>:<version>

in the same content-addressed :class:`~repro.store.ResultStore` that
holds the task results (the ``derived.`` reducer namespace cannot
collide with task keys, whose reducer names are registered reducer
identifiers; the version segment invalidates derived values whenever
the rendering code changes, exactly like task results).

An in-process memo fronts the store so repeated renders inside one
process never re-serialise, and the whole cache degrades to
compute-on-demand when no store is given.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple


class DerivedCache:
    """Two-level (memo + store) cache for derived document values."""

    def __init__(self, store=None, version: Optional[str] = None):
        if version is None:
            from .. import __version__ as version
        self.store = store
        self.version = version
        self._memo: Dict[Tuple[str, str], Any] = {}
        self.hits = 0
        self.misses = 0

    def key(self, fingerprint: str, kind: str) -> str:
        """The store key one derived value lives under."""
        return f"{fingerprint}:derived.{kind}:{self.version}"

    def get_or_compute(self, fingerprint: str, kind: str,
                       compute: Callable[[], Any]) -> Any:
        """The cached value, computing (and persisting) on first miss."""
        memo_key = (fingerprint, kind)
        if memo_key in self._memo:
            self.hits += 1
            return self._memo[memo_key]
        if self.store is not None:
            cached = self.store.get(self.key(fingerprint, kind))
            if cached is not None:
                self.hits += 1
                self._memo[memo_key] = cached
                return cached
        value = compute()
        self.misses += 1
        self._memo[memo_key] = value
        if self.store is not None:
            self.store.put(self.key(fingerprint, kind), value)
        return value


__all__ = ["DerivedCache"]
