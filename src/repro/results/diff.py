"""Digest-keyed diff between two campaign result documents.

Comparative diagnosis work evaluates protocols by diffing result
tables across configurations; this module does it mechanically for any
two ``campaign run --out`` documents:

* **tasks** are aligned by label and compared by spec digest — the
  content address pins *all* run inputs, so two equal digests mean the
  simulations were identical by construction.  For diverging digests
  the named campaign's definitions are rebuilt from each document's
  ``params`` and the flattened spec dicts are compared, so the diff
  names the exact diverging parameters (``cluster.seed: 0 -> 1``), not
  just "something changed";
* **tables** are materialised for both documents and compared
  cell-by-cell (row-aligned, matched by table name);
* **provenance**: given a store, each diverging digest is looked up
  with :meth:`~repro.store.ResultStore.keys_for_prefix` — an index
  query, no shard scan — to report whether the result is cached
  locally and under how many reducer/version keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .source import (
    CampaignDocument,
    DocumentError,
    generic_task_table,
    rebuild_definition,
    tables_for_document,
)
from .tables import Table


def flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into ``a.b[0].c -> leaf`` paths."""
    out: Dict[str, Any] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value[key], path))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            out.update(flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix] = value
    return out


def diff_flat(a: Any, b: Any) -> List[Tuple[str, Any, Any]]:
    """Sorted ``(path, a_value, b_value)`` list of diverging leaves."""
    flat_a, flat_b = flatten(a), flatten(b)
    paths = sorted(set(flat_a) | set(flat_b))
    return [(p, flat_a.get(p, "<absent>"), flat_b.get(p, "<absent>"))
            for p in paths if flat_a.get(p, "<absent>")
            != flat_b.get(p, "<absent>")]


@dataclass(frozen=True)
class TaskDiff:
    """One label whose spec digest diverged between the documents."""

    label: str
    digest_a: str
    digest_b: str
    #: ``(path, a, b)`` of diverging spec parameters (empty when the
    #: specs could not be rebuilt, e.g. ad-hoc spec-file campaigns).
    diverging_params: Tuple[Tuple[str, Any, Any], ...] = ()


@dataclass(frozen=True)
class CellDiff:
    """One table cell that differs."""

    table: str
    row: int
    column: str
    a: str
    b: str


@dataclass
class DocumentDiff:
    """Everything that differs between two campaign documents."""

    campaign_a: str
    campaign_b: str
    params: List[Tuple[str, Any, Any]] = field(default_factory=list)
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)
    tasks: List[TaskDiff] = field(default_factory=list)
    cells: List[CellDiff] = field(default_factory=list)
    tables_only_a: List[str] = field(default_factory=list)
    tables_only_b: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return (self.campaign_a == self.campaign_b and not self.params
                and not self.only_a and not self.only_b and not self.tasks
                and not self.cells and not self.tables_only_a
                and not self.tables_only_b)


def _specs_by_label(doc: CampaignDocument) -> Dict[str, Dict[str, Any]]:
    """Rebuilt ``label -> spec dict`` for a document (or empty)."""
    try:
        definition = rebuild_definition(doc)
    except ValueError:
        return {}
    return {label: spec.to_dict()
            for label, spec in definition.labeled_specs}


def _diff_tables(tables_a: List[Table], tables_b: List[Table],
                 out: DocumentDiff) -> None:
    by_name_a = {t.name: t for t in tables_a}
    by_name_b = {t.name: t for t in tables_b}
    out.tables_only_a = sorted(set(by_name_a) - set(by_name_b))
    out.tables_only_b = sorted(set(by_name_b) - set(by_name_a))
    for name in sorted(set(by_name_a) & set(by_name_b)):
        ta, tb = by_name_a[name], by_name_b[name]
        headers = ta.headers if ta.headers == tb.headers else None
        for i in range(max(len(ta.rows), len(tb.rows))):
            row_a = ta.rows[i] if i < len(ta.rows) else ()
            row_b = tb.rows[i] if i < len(tb.rows) else ()
            for j in range(max(len(row_a), len(row_b))):
                cell_a = row_a[j] if j < len(row_a) else "<absent>"
                cell_b = row_b[j] if j < len(row_b) else "<absent>"
                if cell_a != cell_b:
                    column = (headers[j] if headers and j < len(headers)
                              else f"col {j}")
                    out.cells.append(CellDiff(table=name, row=i,
                                              column=column,
                                              a=cell_a, b=cell_b))


def diff_documents(doc_a: CampaignDocument,
                   doc_b: CampaignDocument) -> DocumentDiff:
    """Compare two documents: params, digests, spec params, cells."""
    out = DocumentDiff(campaign_a=doc_a.campaign, campaign_b=doc_b.campaign)
    out.params = diff_flat(doc_a.params, doc_b.params)

    tasks_a = {t["label"]: t for t in doc_a.tasks}
    tasks_b = {t["label"]: t for t in doc_b.tasks}
    out.only_a = [label for label in doc_a.labels if label not in tasks_b]
    out.only_b = [label for label in doc_b.labels if label not in tasks_a]

    specs_a = specs_b = None
    for label in (lb for lb in doc_a.labels if lb in tasks_b):
        digest_a = tasks_a[label]["digest"]
        digest_b = tasks_b[label]["digest"]
        if digest_a == digest_b:
            continue
        if specs_a is None:
            specs_a, specs_b = _specs_by_label(doc_a), _specs_by_label(doc_b)
        diverging: Tuple[Tuple[str, Any, Any], ...] = ()
        if label in specs_a and label in specs_b:
            diverging = tuple(diff_flat(specs_a[label], specs_b[label]))
        out.tasks.append(TaskDiff(label=label, digest_a=digest_a,
                                  digest_b=digest_b,
                                  diverging_params=diverging))

    _diff_tables(_tables_or_generic(doc_a), _tables_or_generic(doc_b), out)
    return out


def _tables_or_generic(doc: CampaignDocument) -> List[Table]:
    """Tables for a document; failed-task documents degrade to the
    generic per-task table (which shows the errors) instead of raising."""
    try:
        return tables_for_document(doc)
    except DocumentError:
        return [generic_task_table(doc)]


def render_diff(diff: DocumentDiff, store=None) -> str:
    """Human-readable diff report (deterministic line order).

    With a ``store``, every diverging digest gains a provenance line:
    how many cached keys the store indexes under that digest prefix.
    """
    lines: List[str] = []
    if diff.identical:
        lines.append(f"documents identical (campaign "
                     f"{diff.campaign_a!r}): same params, same task "
                     f"digests, same table cells")
        return "\n".join(lines)
    if diff.campaign_a != diff.campaign_b:
        lines.append(f"campaign: {diff.campaign_a!r} -> {diff.campaign_b!r}")
    for path, a, b in diff.params:
        lines.append(f"param {path}: {a!r} -> {b!r}")
    for label in diff.only_a:
        lines.append(f"task only in A: {label}")
    for label in diff.only_b:
        lines.append(f"task only in B: {label}")
    for task in diff.tasks:
        lines.append(f"task {task.label}: digest {task.digest_a} -> "
                     f"{task.digest_b}")
        for path, a, b in task.diverging_params:
            lines.append(f"  spec {path}: {a!r} -> {b!r}")
        if store is not None:
            for side, digest in (("A", task.digest_a), ("B", task.digest_b)):
                keys = store.keys_for_prefix(digest)
                lines.append(f"  provenance {side}: {len(keys)} cached "
                             f"key(s) under digest {digest}")
    for name in diff.tables_only_a:
        lines.append(f"table only in A: {name}")
    for name in diff.tables_only_b:
        lines.append(f"table only in B: {name}")
    for cell in diff.cells:
        lines.append(f"table {cell.table} row {cell.row} "
                     f"[{cell.column}]: {cell.a!r} -> {cell.b!r}")
    return "\n".join(lines)


__all__ = [
    "CellDiff",
    "DocumentDiff",
    "TaskDiff",
    "diff_documents",
    "diff_flat",
    "flatten",
    "render_diff",
]
