"""Application-level jobs co-hosted with the diagnostic middleware.

Demonstrates the paper's add-on property: application producers and
consumers share each node's sending slot with the diagnostic messages
(multiplexed frame channels) and are the layer whose *tolerated
transient outage* drives the Sec. 9 tuning.
"""

from .consumer import ConsumerJob
from .producer import APP_CHANNEL_PREFIX, ProducerJob, app_channel

__all__ = ["ConsumerJob", "ProducerJob", "app_channel",
           "APP_CHANNEL_PREFIX"]
