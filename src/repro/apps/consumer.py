"""Application consumer with outage monitoring (Sec. 9's requirement).

The tuning of the diagnostic protocol revolves around the *maximum
tolerated transient outage* of each application class: "an application
can be prevented from correctly exchanging messages if some of its jobs
are hosted on a faulty node that is kept operative by the p/r
algorithm.  In such case the application might experience an outage."

:class:`ConsumerJob` is that application-side view.  Once per round it
reads a producer's variable through the interface state; a round whose
validity bit is 0 (or whose provider the local diagnostic service has
isolated) counts towards the current outage.  When the consecutive
outage exceeds the application's tolerated budget, the consumer records
an ``outage`` trace event — the moment a real application would start
its recovery action.  The Sec. 9 tuning guarantees the diagnostic
protocol isolates a genuinely faulty provider *before* that happens.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.diagnostic import DiagnosticService
from ..sim.trace import Trace
from ..tt.node import JobContext
from .producer import app_channel


class ConsumerJob:
    """Consumes one application variable and tracks provider outages.

    Parameters
    ----------
    name:
        The application variable (must match the producer's name).
    provider:
        The producing node's ID.
    tolerated_outage_rounds:
        The application's transient-outage budget, in rounds.
    trace:
        Trace to record ``outage`` events into.
    diagnostic:
        The node-local diagnostic service, if any: once the provider is
        isolated, the application switches to its recovery mode and the
        outage accounting stops (the paper assumes recovery is applied
        as soon as diagnosis completes).
    """

    def __init__(self, name: str, provider: int,
                 tolerated_outage_rounds: int, trace: Trace,
                 diagnostic: Optional[DiagnosticService] = None) -> None:
        if tolerated_outage_rounds < 1:
            raise ValueError("tolerated_outage_rounds must be >= 1")
        self.name = name
        self.channel = app_channel(name)
        self.provider = provider
        self.tolerated_outage_rounds = tolerated_outage_rounds
        self.trace = trace
        self.diagnostic = diagnostic
        #: Consecutive rounds without fresh provider data.
        self.current_outage = 0
        #: Longest outage observed before isolation/recovery.
        self.worst_outage = 0
        #: Values successfully consumed: (round, value).
        self.consumed: List[Tuple[int, object]] = []
        #: Rounds at which the tolerated budget was exceeded.
        self.deadline_misses: List[int] = []
        #: Set once the provider was isolated (recovery took over).
        self.recovered_at: Optional[int] = None

    def execute(self, ctx: JobContext) -> None:
        """Consume the provider's variable and account the outage."""
        if self.recovered_at is not None:
            return
        if self.diagnostic is not None and \
                not self.diagnostic.is_active(self.provider):
            # Diagnosis completed: the application applies its recovery
            # action (paper: assumed instantaneous) and the outage ends.
            self.recovered_at = ctx.round_index
            self.trace.record(ctx.time, "recovery", node=ctx.node.node_id,
                              round_index=ctx.round_index,
                              variable=self.name, provider=self.provider)
            return
        valid = ctx.controller.read_validity()[self.provider]
        if valid:
            value = ctx.controller.read_interface(
                channel=self.channel)[self.provider]
            self.consumed.append((ctx.round_index, value))
            self.current_outage = 0
            return
        self.current_outage += 1
        self.worst_outage = max(self.worst_outage, self.current_outage)
        if self.current_outage == self.tolerated_outage_rounds + 1:
            self.deadline_misses.append(ctx.round_index)
            self.trace.record(ctx.time, "outage", node=ctx.node.node_id,
                              round_index=ctx.round_index,
                              variable=self.name, provider=self.provider,
                              outage_rounds=self.current_outage)


__all__ = ["ConsumerJob"]
