"""Application producer job: periodic state published in the node's frame.

Models the application side of the paper's system model: jobs
communicate through interface variables updated once per round by the
communication controllers (Sec. 3).  A producer stages its state on an
application channel of the node's frame; the diagnostic middleware's
messages ride the same frame on their own channel, demonstrating the
add-on property ("without interference with other functionalities").

A producer can be wrapped into a simple control computation — e.g. the
brake-by-wire setpoint of the automotive examples — via the ``compute``
callback.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..tt.node import JobContext

#: Producers publish on ``app:<name>`` channels.
APP_CHANNEL_PREFIX = "app:"


def app_channel(name: str) -> str:
    """Frame channel used by the application variable ``name``."""
    return APP_CHANNEL_PREFIX + name


class ProducerJob:
    """Publishes one application variable per round.

    Parameters
    ----------
    name:
        Variable name; consumers subscribe to ``app_channel(name)``.
    compute:
        ``(round_index) -> value`` callback producing the state to
        publish.  Defaults to a monotonically increasing sequence
        number, which lets consumers check freshness end-to-end.
    """

    def __init__(self, name: str,
                 compute: Optional[Callable[[int], Any]] = None) -> None:
        self.name = name
        self.channel = app_channel(name)
        self._compute = compute if compute is not None else (lambda k: k)
        #: round -> published value, for end-to-end checks.
        self.published: Dict[int, Any] = {}

    def execute(self, ctx: JobContext) -> None:
        """Publish this round's value on the application channel."""
        value = self._compute(ctx.round_index)
        self.published[ctx.round_index] = value
        ctx.controller.write_interface(value, channel=self.channel)


__all__ = ["ProducerJob", "app_channel", "APP_CHANNEL_PREFIX"]
