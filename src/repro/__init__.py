"""repro — a reproduction of "A Tunable Add-On Diagnostic Protocol for
Time-Triggered Systems" (Serafini et al., DSN 2007).

The library provides:

* :mod:`repro.sim` — a deterministic discrete-event simulation engine;
* :mod:`repro.tt` — a synchronous TDMA cluster substrate (bus,
  communication controllers, interface variables with validity bits,
  collision detection, unconstrained node schedules, clocks);
* :mod:`repro.faults` — the paper's fault model and a simulated
  disturbance node (burst/periodic/stochastic scenarios);
* :mod:`repro.core` — the paper's contribution: the add-on diagnostic
  protocol (Alg. 1), the penalty/reward algorithm (Alg. 2), the
  membership variant (Sec. 7), the low-latency system-level variant
  (Sec. 10) and the reintegration extension (Sec. 9);
* :mod:`repro.baselines` — comparison protocols (TTP/C-style
  membership, α-count, immediate isolation);
* :mod:`repro.analysis` — metrics, the Sec. 9 tuning procedure and the
  Fig. 3 analytics;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.obs` — online observability: a deterministic metrics
  registry the protocol updates while it runs, wall-clock phase
  timing, and structured (diffable) run reports;
* :mod:`repro.spec` — declarative, JSON-round-trippable run
  specifications: one :class:`~repro.spec.RunSpec` describes any
  cluster variant, scenario set and reducer, and one build path
  assembles and executes it (serially, in worker pools, or from the
  ``repro-diag run`` CLI);
* :mod:`repro.store` — a content-addressed result store (sqlite
  index + append-only shards) keyed by spec digest, reducer and
  package version, with corruption-tolerant reads and GC;
* :mod:`repro.campaign` — a store-first campaign engine with
  checkpoint/resume, bounded retries and per-task deadlines, behind
  ``repro-diag campaign run|status|gc``;
* :mod:`repro.results` — a declarative results pipeline: table/series
  specs carried by campaign definitions, renderers for every output
  format, cross-campaign diffs and plot emitters, behind
  ``repro-diag results render|diff|plot``;
* :mod:`repro.service` — diagnosis as a service: an HTTP job server
  (``repro-diag serve``) with content-addressed job dedup against the
  store, SSE progress streams, and bounded-queue back-pressure.

Quickstart::

    from repro.spec import (ClusterSpec, ProtocolSpec, RunSpec,
                            ScenarioSpec, execute)

    spec = RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=1),
        scenarios=(ScenarioSpec("SlotBurst",
                                {"round_index": 5, "slot": 2,
                                 "n_slots": 1}),),
        n_rounds=12,
    )
    print(execute(spec))          # {'digest': ..., 'consistent': True, ...}
    print(spec.to_json())         # lossless: RunSpec.from_json round-trips
"""

from .core import (
    CriticalityClass,
    DiagnosedCluster,
    DiagnosticService,
    IsolationMode,
    LowLatencyCluster,
    MembershipCluster,
    MembershipService,
    PenaltyRewardState,
    ProtocolConfig,
    aerospace_config,
    automotive_config,
    uniform_config,
)
from .obs import MetricsRegistry
from .spec import (
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    VariantSpec,
)
from .tt import Cluster, TimeBase

__version__ = "1.6.0"

__all__ = [
    "CriticalityClass",
    "DiagnosedCluster",
    "DiagnosticService",
    "IsolationMode",
    "LowLatencyCluster",
    "MembershipCluster",
    "MembershipService",
    "PenaltyRewardState",
    "ProtocolConfig",
    "aerospace_config",
    "automotive_config",
    "uniform_config",
    "Cluster",
    "ClusterSpec",
    "MetricsRegistry",
    "ProtocolSpec",
    "RunSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "TimeBase",
    "VariantSpec",
    "__version__",
]
