"""Baseline protocols the paper compares against (Sec. 2 / Sec. 9).

* :mod:`repro.baselines.ttpc_membership` — TTP/C-style membership with
  clique avoidance (single-fault assumption);
* :mod:`repro.baselines.alpha_count` — the α-count count-and-threshold
  transient/intermittent discriminator;
* :mod:`repro.baselines.immediate` — isolate-on-first-fault (no
  transient filtering), the implicit baseline of the Sec. 9
  availability argument.
"""

from .alpha_count import AlphaCount, AlphaCountConfig, equivalent_alpha_config
from .immediate import ImmediateIsolation
from .ttpc_membership import (
    TTPCMembershipCluster,
    TTPCNode,
    asymmetric_receiver_fault,
    benign_sender_fault,
    coincident_sender_faults,
)

__all__ = [
    "AlphaCount",
    "AlphaCountConfig",
    "equivalent_alpha_config",
    "ImmediateIsolation",
    "TTPCMembershipCluster",
    "TTPCNode",
    "asymmetric_receiver_fault",
    "benign_sender_fault",
    "coincident_sender_faults",
]
