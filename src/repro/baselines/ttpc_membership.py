"""TTP/C-style membership with clique avoidance (baseline).

The related-work comparison of the paper (Sec. 2) is against the
membership protocol built into TTP/C [Kopetz & Grünsteidl 1994;
Bauer & Paulitsch, SRDS 2000].  Its defining traits:

* every frame implicitly carries the sender's *membership vector*;
* a receiver that could not receive a frame clears the sender's
  membership bit (sender-fault detection latency: about two slots);
* a receiver whose membership disagrees with an accepted frame's
  membership rejects the frame — persistent disagreement means the
  receiver sits in a minority clique;
* *clique avoidance*: before its own sending slot each node compares
  the accepted vs. rejected frame counts since its last slot; if it
  rejected at least as many as it accepted, it must assume it is in
  the minority clique and fail silent (self-removal, typically
  followed by a restart);
* the protocol relies on the **single-fault assumption**: one fault
  per membership resolution; simultaneous faults can make *correct*
  nodes fail the clique-avoidance test and drop out.

This is a deliberately compact, slot-stepped model — enough to compare
fault-handling behaviour, latency and availability against the add-on
protocol under identical fault patterns (see
``benchmarks/bench_ablation_baselines.py``).  It is not a bit-accurate
TTP/C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

#: ``(round_index, slot) -> receivers that fail to receive the frame``.
#: Return an empty set (or None) for a clean slot; the set of *all*
#: receivers models a benign sender fault; a proper subset models an
#: asymmetric fault.
ReceptionFaults = Callable[[int, int], Optional[Set[int]]]


@dataclass
class TTPCNode:
    """Per-node protocol state."""

    node_id: int
    n_nodes: int
    membership: Set[int] = field(default_factory=set)
    accepted: int = 0
    rejected: int = 0
    #: False once the node failed the clique-avoidance check (it would
    #: fail silent and restart; reintegration is out of scope, as in
    #: the paper's discussion of TTP/C).
    alive: bool = True

    def __post_init__(self) -> None:
        if not self.membership:
            self.membership = set(range(1, self.n_nodes + 1))

    def reset_counters(self) -> None:
        """Clear the clique-avoidance counters (done at the own slot)."""
        self.accepted = 0
        self.rejected = 0


class TTPCMembershipCluster:
    """A slot-stepped simulation of TTP/C membership on ``N`` nodes."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.n_nodes = n_nodes
        self.nodes: Dict[int, TTPCNode] = {
            i: TTPCNode(i, n_nodes) for i in range(1, n_nodes + 1)}
        self.round_index = 0
        #: ``(round, slot, node)`` log of clique-avoidance self-removals.
        self.self_removals: List[Tuple[int, int, int]] = []
        #: ``(round, slot, remover, removed)`` membership-bit clears.
        self.removals: List[Tuple[int, int, int, int]] = []

    # ------------------------------------------------------------------
    def run_round(self, faults: Optional[ReceptionFaults] = None) -> None:
        """Advance one TDMA round under the given reception faults."""
        k = self.round_index
        for slot in range(1, self.n_nodes + 1):
            self._step_slot(k, slot, faults)
        self.round_index += 1

    def run_rounds(self, n_rounds: int,
                   faults: Optional[ReceptionFaults] = None) -> None:
        """Advance several rounds under the same fault pattern."""
        for _ in range(n_rounds):
            self.run_round(faults)

    # ------------------------------------------------------------------
    def _step_slot(self, k: int, slot: int,
                   faults: Optional[ReceptionFaults]) -> None:
        sender = self.nodes[slot]

        # Clique avoidance: evaluated right before the node's own slot.
        transmits = sender.alive and slot in sender.membership
        if transmits and sender.rejected > 0 and sender.rejected >= sender.accepted:
            # The node must assume it is in the minority clique.
            sender.alive = False
            sender.membership.discard(slot)
            self.self_removals.append((k, slot, slot))
            transmits = False
        sender.reset_counters()

        failed_receivers: Set[int] = set()
        if faults is not None:
            failed = faults(k, slot)
            if failed:
                failed_receivers = set(failed)

        frame_membership: Optional[FrozenSet[int]] = (
            frozenset(sender.membership) if transmits else None)

        for receiver_id, receiver in self.nodes.items():
            if receiver_id == slot or not receiver.alive:
                continue
            if slot not in receiver.membership:
                # Traffic from excluded nodes is ignored entirely.
                continue
            received = transmits and receiver_id not in failed_receivers
            if not received:
                receiver.membership.discard(slot)
                receiver.rejected += 1
                self.removals.append((k, slot, receiver_id, slot))
                continue
            if receiver_id not in frame_membership:
                # The sender considers us failed: count as a rejection
                # (the clique-avoidance check will resolve who is right).
                receiver.rejected += 1
            elif frame_membership == frozenset(receiver.membership):
                receiver.accepted += 1
            else:
                # Membership disagreement about third parties: reject
                # the frame and clear the sender's bit.
                receiver.membership.discard(slot)
                receiver.rejected += 1
                self.removals.append((k, slot, receiver_id, slot))

    # ------------------------------------------------------------------
    # Queries used by the comparison benchmarks
    # ------------------------------------------------------------------
    def membership_of(self, node_id: int) -> FrozenSet[int]:
        """The membership vector currently held by one node."""
        return frozenset(self.nodes[node_id].membership)

    def alive_nodes(self) -> Tuple[int, ...]:
        """Nodes that have not failed the clique-avoidance check."""
        return tuple(i for i, n in sorted(self.nodes.items()) if n.alive)

    def consistent_membership(self) -> bool:
        """Whether all alive nodes agree on the membership."""
        views = {self.membership_of(i) for i in self.alive_nodes()}
        return len(views) <= 1

    def surviving_fraction(self) -> float:
        """Fraction of nodes still alive (availability measure)."""
        return len(self.alive_nodes()) / self.n_nodes


def benign_sender_fault(round_index: int, slot: int,
                        n_nodes: int) -> ReceptionFaults:
    """A fault pattern: one benign sender fault in a specific slot."""
    all_receivers = set(range(1, n_nodes + 1))

    def faults(k: int, s: int) -> Optional[Set[int]]:
        if k == round_index and s == slot:
            return all_receivers
        return None

    return faults


def coincident_sender_faults(round_index: int, slots: Tuple[int, ...],
                             n_nodes: int) -> ReceptionFaults:
    """Two-or-more benign sender faults in the same round — the case
    outside TTP/C's single-fault assumption."""
    all_receivers = set(range(1, n_nodes + 1))
    slot_set = set(slots)

    def faults(k: int, s: int) -> Optional[Set[int]]:
        if k == round_index and s in slot_set:
            return all_receivers
        return None

    return faults


def asymmetric_receiver_fault(round_index: int, slot: int,
                              failed_receivers: Set[int]) -> ReceptionFaults:
    """An asymmetric fault: only ``failed_receivers`` miss the frame."""

    def faults(k: int, s: int) -> Optional[Set[int]]:
        if k == round_index and s == slot:
            return set(failed_receivers)
        return None

    return faults


__all__ = [
    "TTPCMembershipCluster",
    "TTPCNode",
    "ReceptionFaults",
    "benign_sender_fault",
    "coincident_sender_faults",
    "asymmetric_receiver_fault",
]
