"""The α-count fault-discrimination baseline [Bondavalli et al.].

The paper's penalty/reward algorithm is "a novel extension of the basis
developed in [5, 6]": the α-count *count-and-threshold* mechanism that
discriminates transient from intermittent faults.  This module
implements the classical α-count so the two filtering strategies can be
compared under identical fault streams (the ``bench_ablation_baselines``
benchmark).

α-count keeps one score per node::

    α(L) = α(L-1) + 1     if the node failed in round L
    α(L) = K · α(L-1)     otherwise                (0 <= K <= 1)

and signals the node when ``α > alpha_threshold``.  Where the p/r
algorithm forgets faults abruptly after ``R`` clean rounds, α-count
decays the memory geometrically; the practical consequences of the
difference (heavier parameter coupling, no independent control of the
correlation window) are what the paper's alternative model [7]
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class AlphaCountConfig:
    """α-count parameters.

    ``decay`` is the classical ``K``; ``alpha_threshold`` is ``αT``.
    """

    n_nodes: int
    decay: float
    alpha_threshold: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {self.decay}")
        if self.alpha_threshold <= 0:
            raise ValueError("alpha_threshold must be positive")


class AlphaCount:
    """Per-node α-count filter over consistent health vectors."""

    def __init__(self, config: AlphaCountConfig) -> None:
        self.config = config
        self.alpha: List[float] = [0.0] * config.n_nodes
        self.signalled: List[bool] = [False] * config.n_nodes

    def update(self, cons_hv: Sequence[int]) -> List[int]:
        """One round; returns the activity vector (0 = signal/isolate)."""
        if len(cons_hv) != self.config.n_nodes:
            raise ValueError("health vector size mismatch")
        act = [1] * self.config.n_nodes
        for idx, healthy in enumerate(cons_hv):
            if healthy == 0:
                self.alpha[idx] += 1.0
            else:
                self.alpha[idx] *= self.config.decay
            if self.alpha[idx] > self.config.alpha_threshold:
                self.signalled[idx] = True
            if self.signalled[idx]:
                act[idx] = 0
        return act

    def rounds_to_signal_continuous(self) -> int:
        """Faulty rounds before signalling under a continuous fault."""
        import math
        return int(math.floor(self.config.alpha_threshold)) + 1


def equivalent_alpha_config(n_nodes: int, penalty_threshold: int,
                            reward_threshold: int,
                            criticality: int = 1) -> AlphaCountConfig:
    """An α-count configuration matched to a p/r configuration.

    Matches the *isolation budget* under a continuous fault
    (``alpha_threshold = P / s``) and sets the decay so that the memory
    half-life is comparable to the reward window: ``K^R = 1/2``.
    The ablation benchmark shows that even a matched α-count couples its
    correlation window to the accumulated score (a heavily penalised
    node forgets more slowly in absolute terms), whereas p/r resets
    after exactly ``R`` clean rounds regardless of the counter value.
    """
    threshold = penalty_threshold / criticality
    decay = 0.5 ** (1.0 / reward_threshold)
    return AlphaCountConfig(n_nodes=n_nodes, decay=decay,
                            alpha_threshold=threshold)


__all__ = ["AlphaCount", "AlphaCountConfig", "equivalent_alpha_config"]
