"""Analytic comparison of membership/diagnosis protocols (Sec. 2).

The paper positions its protocol against the related work along four
axes: fault assumptions, latency, bandwidth and portability.  This
module encodes that comparison as data so benchmarks and documentation
render it consistently; the entries for the add-on protocol and the
TTP/C baseline are additionally backed by measurements elsewhere in the
repository (``bench_latency_variants``, ``bench_ablation_baselines``).

Sources, per protocol:

* **Cristian '91** — synchronous crash-only membership on atomic
  broadcast; consistency is bought with an expensive primitive, which
  the paper deems impractical for TT systems.
* **TTP/C membership** [Kopetz & Grünsteidl; Bauer & Paulitsch] —
  built-in, single-fault assumption, non-malicious failures; 2 slots
  (sender faults) / 2 rounds (receiver faults) latency; O(N) bits per
  message.
* **Ezhilchelvan & Lemos '90** — robust membership tolerating up to
  half the senders simultaneously faulty, 3-round latency (analytic
  entry only; not implemented).
* **This paper, add-on** — multiple coincident non-malicious and
  malicious faults (N > 2a+2s+b+1, a <= 1), worst-case 4-round
  latency, O(N) bits per message, application-level portability.
* **This paper, system-level variant** — same fault model, 1-round
  diagnosis / 2-round membership, portability traded away (Sec. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ProtocolEntry:
    """One row of the related-work comparison."""

    name: str
    fault_assumption: str
    tolerates_malicious: bool
    latency: str
    bandwidth_per_message: str
    placement: str


RELATED_WORK: Tuple[ProtocolEntry, ...] = (
    ProtocolEntry(
        name="Cristian '91",
        fault_assumption="crash-only",
        tolerates_malicious=False,
        latency="atomic-broadcast bound (high)",
        bandwidth_per_message="high (atomic broadcast)",
        placement="middleware on atomic broadcast",
    ),
    ProtocolEntry(
        name="TTP/C membership",
        fault_assumption="single fault per resolution",
        tolerates_malicious=False,
        latency="2 slots (sender) / 2 rounds (receiver)",
        bandwidth_per_message="O(N) bits",
        placement="built-in, system level",
    ),
    ProtocolEntry(
        name="Ezhilchelvan-Lemos '90",
        fault_assumption="up to half of senders faulty",
        tolerates_malicious=False,
        latency="3 TDMA rounds",
        bandwidth_per_message="O(N) bits",
        placement="system level",
    ),
    ProtocolEntry(
        name="this paper, add-on",
        fault_assumption="N > 2a+2s+b+1, a <= 1 (coincident)",
        tolerates_malicious=True,
        latency="<= 4 TDMA rounds (worst case)",
        bandwidth_per_message="N bits",
        placement="add-on, application level",
    ),
    ProtocolEntry(
        name="this paper, system-level variant",
        fault_assumption="N > 2a+2s+b+1, a <= 1 (coincident)",
        tolerates_malicious=True,
        latency="1 round (diagnosis) / 2 rounds (membership)",
        bandwidth_per_message="N bits",
        placement="system level (Sec. 10)",
    ),
)


def comparison_rows() -> List[Tuple[str, str, str, str, str, str]]:
    """The table as plain rows for rendering."""
    return [(e.name, e.fault_assumption,
             "yes" if e.tolerates_malicious else "no",
             e.latency, e.bandwidth_per_message, e.placement)
            for e in RELATED_WORK]


__all__ = ["ProtocolEntry", "RELATED_WORK", "comparison_rows"]
