"""Immediate-isolation baseline (no transient filtering).

The paper motivates the p/r algorithm by contrast with the behaviour of
built-in TT membership services that exclude (and typically restart) a
node after its first detected fault: "if nodes were immediately
isolated after the first fault appearance, a single abnormal transient
period would result in the isolation of all the nodes in the system and
would entail a restart of the whole system" (Sec. 9).

:class:`ImmediateIsolation` is that strategy expressed in the same
interface as :class:`~repro.core.penalty_reward.PenaltyRewardState`, so
the availability ablation can swap filters under identical fault
streams.  It is exactly the p/r algorithm with ``P = 0``.
"""

from __future__ import annotations

from typing import List, Sequence


class ImmediateIsolation:
    """Isolate every node on its first diagnosed fault."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.isolated: List[bool] = [False] * n_nodes

    def update(self, cons_hv: Sequence[int]) -> List[int]:
        """One round; returns the activity vector (0 = isolated)."""
        if len(cons_hv) != self.n_nodes:
            raise ValueError("health vector size mismatch")
        act = [1] * self.n_nodes
        for idx, healthy in enumerate(cons_hv):
            if healthy == 0:
                self.isolated[idx] = True
            if self.isolated[idx]:
                act[idx] = 0
        return act

    @property
    def all_isolated(self) -> bool:
        """Whether the whole system would need a restart."""
        return all(self.isolated)


__all__ = ["ImmediateIsolation"]
