"""Rare-event Monte Carlo estimation for isolation / false-alarm curves.

The paper's tuning claims (Secs. 8-9, Fig. 3) are probability
statements — "a correctly tuned ``(P, R)`` isolates intermittent nodes
while false alarms from independent transients are negligible" — and
at realistic fault rates the interesting probabilities are far in the
tail.  This module provides the estimators and the drivers:

* :func:`wilson_interval` / :func:`estimate_probability` — binomial
  point estimate with a Wilson score confidence interval (well-behaved
  at 0 and 1 successes, unlike the normal approximation);
* :func:`stratified_estimate` — post-stratified estimator combining
  per-stratum binomial results under known stratum weights, variance
  ``sum w_i^2 p_i (1 - p_i) / n_i``;
* :func:`splitting_estimate` — multiplicative importance-splitting
  estimator ``prod k_i / n_i`` over conditional stages, with a
  delta-method CI on the log scale (``var(ln p) ~= sum
  (1 - p_i) / (n_i p_i)``), the standard tool when the target event is
  too rare for direct sampling;
* :func:`isolation_probability` / :func:`isolation_curve` — drivers
  running seed-shifted replicates through
  :func:`repro.runner.sweep.run_monte_carlo_sweep` (store-cacheable,
  pool- and kernel-batch friendly) and reducing each replicate with the
  :class:`IsolationReducer` registered here under the name
  ``"isolation"``.

Every estimator is pure arithmetic over integer counts, so results are
exactly reproducible and cache-stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..spec.reducers import register_reducer

#: Default normal quantile: two-sided 95% confidence.
DEFAULT_Z = 1.96


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A probability estimate with its confidence interval."""

    p_hat: float
    ci_low: float
    ci_high: float
    successes: int
    trials: int
    z: float = DEFAULT_Z

    def contains(self, p: float) -> bool:
        """Whether ``p`` lies inside the reported interval."""
        return self.ci_low <= p <= self.ci_high

    def half_width(self) -> float:
        """Half the interval width (a scalar precision summary)."""
        return (self.ci_high - self.ci_low) / 2.0


def wilson_interval(successes: int, trials: int,
                    z: float = DEFAULT_Z) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Chosen over the Wald interval because it stays inside ``[0, 1]``
    and keeps sane coverage at 0 or ``trials`` successes — exactly the
    regimes rare-event estimation lives in.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, trials], got {successes}/{trials}")
    n = float(trials)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))) / denom
    return max(0.0, center - half), min(1.0, center + half)


def estimate_probability(successes: int, trials: int,
                         z: float = DEFAULT_Z) -> MonteCarloEstimate:
    """Direct binomial estimate with a Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    return MonteCarloEstimate(p_hat=successes / trials, ci_low=low,
                              ci_high=high, successes=successes,
                              trials=trials, z=z)


def stratified_estimate(strata: Sequence[Tuple[float, int, int]],
                        z: float = DEFAULT_Z) -> MonteCarloEstimate:
    """Post-stratified estimator over ``(weight, successes, trials)``.

    ``weight`` is the known probability mass of the stratum; weights
    must sum to 1.  The point estimate is ``sum w_i p_i`` and the
    variance ``sum w_i^2 p_i (1 - p_i) / n_i`` (independent strata), so
    concentrating samples in rare strata shrinks the interval far below
    what plain sampling at the same budget achieves.
    """
    if not strata:
        raise ValueError("need at least one stratum")
    total_w = math.fsum(w for w, _k, _n in strata)
    if abs(total_w - 1.0) > 1e-9:
        raise ValueError(f"stratum weights must sum to 1, got {total_w}")
    p_hat = 0.0
    var = 0.0
    successes = 0
    trials = 0
    for weight, k, n in strata:
        if weight < 0:
            raise ValueError(f"stratum weight must be >= 0, got {weight}")
        if n <= 0:
            raise ValueError(f"stratum trials must be positive, got {n}")
        if not 0 <= k <= n:
            raise ValueError(f"stratum successes must be in [0, trials]")
        p_i = k / n
        p_hat += weight * p_i
        var += weight * weight * p_i * (1.0 - p_i) / n
        successes += k
        trials += n
    half = z * math.sqrt(var)
    return MonteCarloEstimate(
        p_hat=p_hat, ci_low=max(0.0, p_hat - half),
        ci_high=min(1.0, p_hat + half), successes=successes,
        trials=trials, z=z)


def splitting_estimate(stages: Sequence[Tuple[int, int]],
                       z: float = DEFAULT_Z) -> MonteCarloEstimate:
    """Multiplicative importance-splitting estimator over stages.

    ``stages`` holds ``(successes, trials)`` per conditional level: the
    fraction of level-``i`` samples that reach level ``i + 1``.  The
    rare-event probability is ``prod k_i / n_i``; the CI uses the
    delta method on the log scale (stages independent):
    ``var(ln p_hat) ~= sum (1 - p_i) / (n_i p_i)``.

    If any stage records zero successes the point estimate is 0 and the
    interval is ``[0, prod wilson_upper_i]`` — the log-scale CI is
    undefined at zero, and the product of per-stage Wilson upper bounds
    is the natural conservative cap.
    """
    if not stages:
        raise ValueError("need at least one stage")
    p_hat = 1.0
    log_var = 0.0
    successes = 0
    trials = 0
    any_zero = False
    upper_cap = 1.0
    for k, n in stages:
        if n <= 0:
            raise ValueError(f"stage trials must be positive, got {n}")
        if not 0 <= k <= n:
            raise ValueError("stage successes must be in [0, trials]")
        p_i = k / n
        p_hat *= p_i
        upper_cap *= wilson_interval(k, n, z)[1]
        successes += k
        trials += n
        if k == 0:
            any_zero = True
        else:
            log_var += (1.0 - p_i) / (n * p_i)
    if any_zero:
        return MonteCarloEstimate(p_hat=0.0, ci_low=0.0,
                                  ci_high=min(1.0, upper_cap),
                                  successes=successes, trials=trials, z=z)
    sigma = math.sqrt(log_var)
    return MonteCarloEstimate(
        p_hat=p_hat,
        ci_low=max(0.0, p_hat * math.exp(-z * sigma)),
        ci_high=min(1.0, p_hat * math.exp(z * sigma)),
        successes=successes, trials=trials, z=z)


@register_reducer
class IsolationReducer:
    """Per-run isolation outcomes as a JSON-native dict.

    The result is ``{"first_isolation": {node: time-or-None},
    "isolated": [nodes...]}`` with string node keys, so it survives the
    store's JSON codec byte-identically on both backends.
    """

    name = "isolation"

    def reduce(self, target, spec, state) -> Dict[str, Any]:
        """Read each node's first isolation time off the finished run."""
        n = spec.protocol.n_nodes
        first = {str(j): target.first_isolation_time(j)
                 for j in range(1, n + 1)}
        isolated = sorted(int(j) for j, t in first.items() if t is not None)
        return {"first_isolation": first, "isolated": isolated}


def _count_isolations(results: List[Dict[str, Any]],
                      target_node: Optional[int]) -> int:
    hits = 0
    for result in results:
        if target_node is None:
            hits += bool(result["isolated"])
        else:
            hits += result["first_isolation"][str(target_node)] is not None
    return hits


def isolation_probability(spec: Any, replicates: int,
                          target_node: Optional[int] = None,
                          jobs: int = 1, store: Optional[Any] = None,
                          z: float = DEFAULT_Z) -> MonteCarloEstimate:
    """Estimate P(isolation) over seed-shifted replicates of ``spec``.

    ``target_node`` counts isolation of that node only; ``None`` counts
    a run as a success if *any* node is isolated (the false-alarm
    definition for an all-healthy cluster).  Replicates run through
    :func:`~repro.runner.sweep.run_monte_carlo_sweep`, so a result
    store caches them by content address and the vectorized backend
    simulates all cache misses as one kernel batch.
    """
    from ..runner.sweep import run_monte_carlo_sweep

    results = run_monte_carlo_sweep(spec, replicates, jobs=jobs,
                                    store=store, reducer="isolation")
    return estimate_probability(_count_isolations(results, target_node),
                                replicates, z=z)


def isolation_curve(points: Sequence[Tuple[Any, Any]], replicates: int,
                    target_node: Optional[int] = None,
                    jobs: int = 1, store: Optional[Any] = None,
                    z: float = DEFAULT_Z
                    ) -> List[Tuple[Any, MonteCarloEstimate]]:
    """One :func:`isolation_probability` per ``(x, spec)`` point.

    The returned list pairs each ``x`` (e.g. a fault rate) with its
    estimate — the data behind a false-alarm or isolation-probability
    curve over a swept channel parameter.
    """
    return [(x, isolation_probability(spec, replicates,
                                      target_node=target_node, jobs=jobs,
                                      store=store, z=z))
            for x, spec in points]


__all__ = [
    "DEFAULT_Z",
    "IsolationReducer",
    "MonteCarloEstimate",
    "estimate_probability",
    "isolation_curve",
    "isolation_probability",
    "splitting_estimate",
    "stratified_estimate",
    "wilson_interval",
]
