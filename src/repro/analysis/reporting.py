"""Fixed-width table rendering for benchmark and experiment output.

The benchmark harnesses print the same rows/series the paper reports;
this module keeps that presentation logic in one place so every bench
emits tables with a consistent look::

    +------------+---------------+-------------------+
    | Setting    | Class         | Time to isolation |
    +------------+---------------+-------------------+
    | Automotive | SC / SR / NSR | 0.52/4.09/25.0 s  |
    ...
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence


def format_cell(value: Any) -> str:
    """Human-friendly cell formatting.

    The single numeric-formatting rule for every renderer (ASCII,
    markdown, LaTeX, CSV): ``None`` reads as ``-``, bools keep their
    ``True``/``False`` spelling (bool is an int subclass, so it must be
    caught before any numeric branch), floats collapse to ``0`` at zero
    regardless of sign (``-0.0`` would otherwise leak a sign that no
    measurement distinguishes), and magnitudes outside ``[1e-3, 1e4)``
    switch to scientific notation.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            # Covers -0.0 too: copysign is not consulted on purpose.
            return "0"
        if math.isnan(value):
            return "nan"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


#: LaTeX specials that must be escaped inside a tabular cell.
_LATEX_SPECIALS = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def escape_markdown_cell(text: str) -> str:
    """Escape a formatted cell for a GitHub-markdown table.

    Only the characters that break *table structure* are escaped — a
    literal ``|`` would end the cell — so numeric cells pass through
    byte-identical to :func:`format_cell`.
    """
    return text.replace("\\", "\\\\").replace("|", "\\|")


def escape_latex_cell(text: str) -> str:
    """Escape a formatted cell for a LaTeX tabular.

    ``&`` (column separator), ``%`` (comment) and friends would
    otherwise silently corrupt the emitted table.
    """
    out = []
    for ch in text:
        if ch == "\\":
            out.append(r"\textbackslash{}")
        else:
            out.append(_LATEX_SPECIALS.get(ch, ch))
    return "".join(out)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with a separator line after the header."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([sep, fmt_row(headers), sep])
    lines.extend(fmt_row(row) for row in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def render_comparison(title: str, paper_value: Any, measured_value: Any,
                      unit: str = "") -> str:
    """One-line paper-vs-measured comparison for EXPERIMENTS.md style output."""
    suffix = f" {unit}" if unit else ""
    return (f"{title}: paper = {format_cell(paper_value)}{suffix}, "
            f"measured = {format_cell(measured_value)}{suffix}")


def render_series(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A small two-column series (for figure reproductions)."""
    return render_table(
        [x_label, y_label], list(zip(xs, ys)), title=name)


__all__ = [
    "escape_latex_cell",
    "escape_markdown_cell",
    "format_cell",
    "render_comparison",
    "render_series",
    "render_table",
]
