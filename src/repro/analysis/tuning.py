"""The Sec. 9 tuning procedure: deriving P and criticality levels.

The paper tunes the p/r algorithm experimentally: "we injected
continuous faulty bursts and observed the value of the penalty counter
reached when the maximum diagnostic latency for each criticality class
was reached.  If classes c_1, ..., c_i have corresponding penalties
p_1, ..., p_i, we set P = max(p_1, ..., p_i) and the criticality of
each class to s_i = ceil(P / p_i)."

This module implements that procedure both ways:

* :func:`penalty_budget_for_outage` — the *observed* penalty for one
  class: the number of health-vector updates a continuously faulty node
  receives before the class's tolerated outage elapses, discounting the
  detection pipeline (a fault becomes visible to the p/r counters only
  ``detection_pipeline_rounds`` after it occurs) and the (assumed
  instantaneous) recovery, exactly as in the paper's experiment;
* :func:`tune` — the full derivation of ``(P, {class: s})``.

With the paper's parameters (T = 2.5 ms, add-on pipeline of 3 rounds)
this reproduces Table 2 exactly: automotive P = 197 with s = 40/6/1,
aerospace P = 17 with s = 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.config import (
    AEROSPACE_TOLERATED_OUTAGE,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    CriticalityClass,
)

#: Pipeline depth of the add-on protocol with send alignment (Lemma 1:
#: the health vector of round k refers to round k-3).
ADDON_PIPELINE_ROUNDS = 3


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the Sec. 9 tuning for one domain."""

    penalty_threshold: int
    criticalities: Dict[CriticalityClass, int]
    penalty_budgets: Dict[CriticalityClass, int]
    round_length: float

    def isolation_latency(self, cls: CriticalityClass) -> float:
        """Diagnostic latency for a continuously faulty node of ``cls``.

        Faulty rounds until the penalty exceeds P, plus the detection
        pipeline, in seconds.
        """
        s = self.criticalities[cls]
        rounds = self.penalty_threshold // s + 1
        return (rounds + ADDON_PIPELINE_ROUNDS) * self.round_length


def penalty_budget_for_outage(tolerated_outage: float, round_length: float,
                              pipeline_rounds: int = ADDON_PIPELINE_ROUNDS) -> int:
    """Penalty counter value observed at the outage deadline.

    Under a continuous fault starting at round 0, the p/r counters see
    the first faulty verdict at round ``pipeline_rounds`` and one more
    per round after that.  When the tolerated outage elapses (round
    ``floor(outage / T)``), the counter of a criticality-1 node has
    reached ``floor(outage / T) - pipeline_rounds``.
    """
    if tolerated_outage <= 0:
        raise ValueError("tolerated_outage must be positive")
    total_rounds = int(math.floor(tolerated_outage / round_length + 1e-9))
    budget = total_rounds - pipeline_rounds
    if budget < 1:
        raise ValueError(
            f"outage {tolerated_outage}s is below the protocol's minimum "
            f"latency ({(pipeline_rounds + 1) * round_length}s)")
    return budget


def tune(tolerated_outages: Mapping[CriticalityClass, float],
         round_length: float,
         pipeline_rounds: int = ADDON_PIPELINE_ROUNDS) -> TuningResult:
    """Run the Sec. 9 derivation for a set of criticality classes."""
    budgets = {
        cls: penalty_budget_for_outage(outage, round_length, pipeline_rounds)
        for cls, outage in tolerated_outages.items()
    }
    penalty_threshold = max(budgets.values())
    criticalities = {
        cls: math.ceil(penalty_threshold / budget)
        for cls, budget in budgets.items()
    }
    return TuningResult(
        penalty_threshold=penalty_threshold,
        criticalities=criticalities,
        penalty_budgets=budgets,
        round_length=round_length,
    )


def tune_automotive(round_length: float = 2.5e-3) -> TuningResult:
    """Table 2, automotive row: expected P = 197, s = {SC:40, SR:6, NSR:1}."""
    return tune(AUTOMOTIVE_TOLERATED_OUTAGE, round_length)


def tune_aerospace(round_length: float = 2.5e-3) -> TuningResult:
    """Table 2, aerospace row: expected P = 17, s = {SC:1}."""
    return tune(AEROSPACE_TOLERATED_OUTAGE, round_length)


__all__ = [
    "ADDON_PIPELINE_ROUNDS",
    "TuningResult",
    "penalty_budget_for_outage",
    "tune",
    "tune_automotive",
    "tune_aerospace",
]
