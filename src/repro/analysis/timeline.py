"""ASCII timeline rendering of a simulation trace.

Renders the round/slot grid of a run with the injected fault classes
and the protocol's reactions, in the spirit of the paper's Fig. 1 —
useful in examples, debugging sessions and documentation::

    round | slots 1..4 | events
    ------+------------+---------------------------
        5 | . . . .    |
        6 | . B . .    | fault: noise @ slot 2
        7 | . . . .    |
        8 | . . . .    |
        9 | . . . .    | cons_hv 1011 (diagnoses 6)

Legend: ``.`` clean slot, ``B`` benign, ``A`` asymmetric, ``M``
symmetric malicious, ``-`` silent sender; ``X`` marks a slot of an
isolated node, ``R`` a reintegration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.trace import Trace

#: Symbol per bus-level fault class.
_SYMBOLS = {
    "none": ".",
    "symmetric_benign": "B",
    "symmetric_malicious": "M",
    "asymmetric": "A",
}


def _slot_symbols(trace: Trace, n_nodes: int) -> Dict[int, List[str]]:
    grid: Dict[int, List[str]] = {}
    for rec in trace.select(category="tx"):
        k = rec.data["round_index"]
        slot = rec.data["slot"]
        row = grid.setdefault(k, ["?"] * n_nodes)
        if not rec.data.get("sent", True):
            row[slot - 1] = "-"
        else:
            row[slot - 1] = _SYMBOLS.get(rec.data["fault_class"], "?")
    return grid


def _round_events(trace: Trace, observer: Optional[int]) -> Dict[int, List[str]]:
    events: Dict[int, List[str]] = {}

    def add(k: int, text: str) -> None:
        bucket = events.setdefault(k, [])
        if text not in bucket:
            bucket.append(text)

    for rec in trace.select(category="tx"):
        causes = [c for c in rec.data.get("causes", ())
                  if c != "silent-sender"]
        if causes and rec.data["fault_class"] != "none":
            add(rec.data["round_index"],
                f"fault: {causes[0]} @ slot {rec.data['slot']}")
    for rec in trace.select(category="cons_hv", node=observer):
        hv = rec.data["cons_hv"]
        if 0 in hv:
            add(rec.data["round_index"],
                "cons_hv " + "".join(map(str, hv))
                + f" (diagnoses {rec.data['diagnosed_round']})")
    for rec in trace.select(category="isolation"):
        if observer is None or rec.node == observer:
            k = rec.data.get("round_index")
            if k is not None:
                add(k, f"isolate node {rec.data['isolated']}")
    for rec in trace.select(category="view"):
        if observer is None or rec.node == observer:
            k = rec.data.get("round_index")
            if k is not None:
                view = ",".join(map(str, rec.data["view"]))
                add(k, f"new view {{{view}}}")
    for rec in trace.select(category="reintegration"):
        if observer is None or rec.node == observer:
            add(rec.data["round_index"],
                f"reintegrate node {rec.data['reintegrated']}")
    return events


def render_timeline(trace: Trace, n_nodes: int,
                    first_round: int = 0,
                    last_round: Optional[int] = None,
                    observer: Optional[int] = 1) -> str:
    """Render the round/slot timeline of a finished run.

    ``observer`` selects whose health vectors and decisions annotate
    the right column (``None`` = everyone's decision events).
    """
    grid = _slot_symbols(trace, n_nodes)
    events = _round_events(trace, observer)
    if not grid:
        return "(empty trace)"
    if last_round is None:
        last_round = max(grid)
    header = f"round | slots 1..{n_nodes} | events"
    sep = "-" * 6 + "+" + "-" * (2 * n_nodes + 1) + "+" + "-" * 30
    lines = [header, sep]
    for k in range(first_round, last_round + 1):
        row = grid.get(k, ["?"] * n_nodes)
        marks = " ".join(row)
        annotation = "; ".join(events.get(k, []))
        lines.append(f"{k:>5} | {marks} | {annotation}")
    return "\n".join(lines)


def isolation_marks(trace: Trace) -> List[Tuple[int, int]]:
    """``(round, node)`` pairs of all isolation decisions (for plots)."""
    out = []
    for rec in trace.select(category="isolation"):
        k = rec.data.get("round_index")
        if k is not None:
            out.append((k, rec.data["isolated"]))
    return sorted(set(out))


__all__ = ["render_timeline", "isolation_marks"]
