"""Fig. 3 analytics: setting the reward threshold R.

Sec. 9, "Characterizing intermittent faults": the reward threshold
``R`` must balance two probabilistic goals, at a round length ``T``:

* **correlate intermittent faults** — an internal fault whose time to
  reappearance is below ``R x T`` must hit the penalty counter again
  *before* the reward resets it;
* **avoid correlating independent transients** — two unrelated external
  transients should almost never land within the same window.

With memoryless arrival models both probabilities are closed-form:

* ``P(correlate next intermittent) = 1 - exp(-R*T / MTTR_int)`` where
  ``MTTR_int`` is the mean time to reappearance of the internal fault;
* ``P(correlate 2nd transient)     = 1 - exp(-rate_ext * R * T)``.

Fig. 3 plots this tradeoff for the paper's automotive/aerospace
settings at ``T = 2.5 ms``; the paper picks ``R = 10^6``
(window ``R x T ≈ 42 min``), for which the probability of incorrectly
correlating a second transient stays below 1 % at the considered
external rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: The paper's choice (Table 2).
PAPER_R = 10 ** 6
#: The paper's TDMA round length.
PAPER_T = 2.5e-3


def correlation_window_seconds(reward_threshold: int,
                               round_length: float = PAPER_T) -> float:
    """The fault-correlation window ``R x T`` in seconds."""
    if reward_threshold < 1:
        raise ValueError("reward_threshold must be >= 1")
    return reward_threshold * round_length


def p_correlate_transient(external_rate: float, reward_threshold: int,
                          round_length: float = PAPER_T) -> float:
    """Probability of incorrectly correlating a second external transient.

    ``external_rate`` is the Poisson arrival rate of external transients
    in events per second.
    """
    if external_rate < 0:
        raise ValueError("external_rate must be >= 0")
    window = correlation_window_seconds(reward_threshold, round_length)
    return 1.0 - math.exp(-external_rate * window)


def p_correlate_intermittent(mean_reappearance: float, reward_threshold: int,
                             round_length: float = PAPER_T) -> float:
    """Probability of correctly correlating the next intermittent fault.

    ``mean_reappearance`` is the mean time to reappearance (seconds) of
    the internal fault, assumed exponentially distributed.
    """
    if mean_reappearance <= 0:
        raise ValueError("mean_reappearance must be positive")
    window = correlation_window_seconds(reward_threshold, round_length)
    return 1.0 - math.exp(-window / mean_reappearance)


@dataclass(frozen=True)
class RewardTradeoffPoint:
    """One point of the Fig. 3 tradeoff curve."""

    reward_threshold: int
    window_seconds: float
    p_correlate_transient: float
    p_correlate_intermittent: float


def reward_tradeoff_curve(reward_thresholds: Sequence[int],
                          external_rate: float,
                          intermittent_mean_reappearance: float,
                          round_length: float = PAPER_T) -> List[RewardTradeoffPoint]:
    """The Fig. 3 curve family for one (external, internal) rate pair."""
    return [
        RewardTradeoffPoint(
            reward_threshold=r,
            window_seconds=correlation_window_seconds(r, round_length),
            p_correlate_transient=p_correlate_transient(
                external_rate, r, round_length),
            p_correlate_intermittent=p_correlate_intermittent(
                intermittent_mean_reappearance, r, round_length),
        )
        for r in reward_thresholds
    ]


def max_reward_for_transient_bound(external_rate: float, bound: float,
                                   round_length: float = PAPER_T) -> int:
    """Largest R keeping the transient-correlation probability <= bound.

    Inverts ``1 - exp(-rate * R * T) <= bound``.
    """
    if not 0 < bound < 1:
        raise ValueError("bound must be in (0, 1)")
    if external_rate <= 0:
        raise ValueError("external_rate must be positive")
    window = -math.log(1.0 - bound) / external_rate
    return max(1, int(math.floor(window / round_length)))


def min_reward_for_intermittent_bound(mean_reappearance: float, bound: float,
                                      round_length: float = PAPER_T) -> int:
    """Smallest R correlating the next intermittent with probability >= bound."""
    if not 0 < bound < 1:
        raise ValueError("bound must be in (0, 1)")
    window = -math.log(1.0 - bound) * mean_reappearance
    return max(1, int(math.ceil(window / round_length)))


__all__ = [
    "PAPER_R",
    "PAPER_T",
    "correlation_window_seconds",
    "p_correlate_transient",
    "p_correlate_intermittent",
    "RewardTradeoffPoint",
    "reward_tradeoff_curve",
    "max_reward_for_transient_bound",
    "min_reward_for_intermittent_bound",
]
