"""Trace-derived metrics: latency, availability, consistency.

These functions evaluate the protocol from the *outside*: they consume
the shared :class:`~repro.sim.trace.Trace` (and occasionally service
state) and produce the quantities the paper reports — detection
latency, time to isolation, availability of criticality classes, and
the consistency/correctness/completeness oracle checks used to score
fault-injection experiments (Sec. 8).

Trace-level requirements
------------------------
Most of these queries only make sense when the trace actually recorded
the inputs they scan.  A level-0 trace keeps decision records only
(isolation, reintegration, view, clique, fault); a level-1 trace adds
the health vectors that contain a fault, and only level 2 records
*every* health vector.  Full-vector queries (consistency, correctness,
completeness) would silently return wrong answers on a sparse trace —
e.g. report "complete" because no contradicting healthy vector was
recorded — so every function that needs a minimum level raises
:class:`InsufficientTraceError` when the trace was recorded below it.
For online numbers that survive ``trace_level=0``, use the
:mod:`repro.obs` metrics registry instead.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim.trace import Trace, TraceRecord


class InsufficientTraceError(RuntimeError):
    """The trace was recorded at a level too low to answer the query.

    Raised instead of silently returning empty/incorrect results when,
    for example, ``consistency_violations`` is asked about a trace
    recorded with ``trace_level=0`` (no ``cons_hv`` records at all) or
    ``1`` (only fault-containing vectors, so agreement on healthy
    vectors is unobservable).
    """


def _require_trace_level(trace: Trace, min_level: int, what: str) -> None:
    level = getattr(trace, "level", None)
    if level is not None and level < min_level:
        raise InsufficientTraceError(
            f"{what} needs a trace recorded at level >= {min_level}, "
            f"but this trace has level {level}; re-run with "
            f"trace_level={min_level} (or use the repro.obs metrics "
            f"registry for online counters)")


def health_vectors_by_node(trace: Trace) -> Dict[int, Dict[int, Tuple[int, ...]]]:
    """``node -> diagnosed_round -> health vector`` from the trace.

    Needs a level-2 trace: lower levels omit (some or all) health
    vectors, so the mapping would be silently incomplete.
    """
    _require_trace_level(trace, 2, "health_vectors_by_node")
    out: Dict[int, Dict[int, Tuple[int, ...]]] = defaultdict(dict)
    for rec in trace.select(category="cons_hv"):
        out[rec.node][rec.data["diagnosed_round"]] = tuple(rec.data["cons_hv"])
    return dict(out)


def consistency_violations(trace: Trace,
                           obedient: Sequence[int]) -> List[Tuple[int, Dict[int, Tuple[int, ...]]]]:
    """Diagnosed rounds where obedient nodes disagree (should be empty).

    Returns ``[(diagnosed_round, {node: vector, ...}), ...]`` for each
    round with at least two distinct vectors among obedient nodes.
    Needs a level-2 trace (agreement on healthy vectors is part of the
    property).
    """
    _require_trace_level(trace, 2, "consistency_violations")
    by_node = health_vectors_by_node(trace)
    rounds: Set[int] = set()
    for node in obedient:
        rounds.update(by_node.get(node, {}))
    violations = []
    for d_round in sorted(rounds):
        vectors = {node: by_node[node][d_round]
                   for node in obedient
                   if node in by_node and d_round in by_node[node]}
        if len(set(vectors.values())) > 1:
            violations.append((d_round, vectors))
    return violations


def diagnoses_for_round(trace: Trace, diagnosed_round: int,
                        obedient: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Each obedient node's health vector for one diagnosed round.

    Needs a level-2 trace (see :class:`InsufficientTraceError`).
    """
    _require_trace_level(trace, 2, "diagnoses_for_round")
    by_node = health_vectors_by_node(trace)
    return {node: by_node[node][diagnosed_round]
            for node in obedient
            if node in by_node and diagnosed_round in by_node[node]}


def completeness_holds(trace: Trace, diagnosed_round: int, faulty_slot: int,
                       obedient: Sequence[int]) -> bool:
    """Every obedient node diagnosed the benign faulty sender as faulty."""
    vectors = diagnoses_for_round(trace, diagnosed_round, obedient)
    if not vectors:
        return False
    return all(v[faulty_slot - 1] == 0 for v in vectors.values())


def correctness_holds(trace: Trace, diagnosed_round: int,
                      correct_nodes: Sequence[int],
                      obedient: Sequence[int]) -> bool:
    """No obedient node diagnosed a correct sender as faulty."""
    vectors = diagnoses_for_round(trace, diagnosed_round, obedient)
    if not vectors:
        return False
    return all(v[c - 1] == 1 for v in vectors.values() for c in correct_nodes)


def first_isolation_time(trace: Trace, isolated: int) -> Optional[float]:
    """Earliest instant any node isolated ``isolated`` (None if never)."""
    times = [rec.time for rec in trace.select(category="isolation")
             if rec.data.get("isolated") == isolated]
    return min(times) if times else None


def isolation_round(trace: Trace, isolated: int) -> Optional[int]:
    """Protocol round of the earliest isolation of ``isolated``."""
    records = [rec for rec in trace.select(category="isolation")
               if rec.data.get("isolated") == isolated]
    if not records:
        return None
    earliest = min(records, key=lambda r: r.time)
    return earliest.data.get("round_index")


def detection_latency_rounds(trace: Trace, fault_round: int,
                             faulty_slot: int) -> Optional[int]:
    """Rounds from a fault to its first consistent detection.

    Finds the earliest ``cons_hv`` record whose diagnosed round is
    ``fault_round`` and which marks ``faulty_slot`` faulty; the latency
    is the analysis round minus the fault round.  Needs at least a
    level-1 trace (fault-containing vectors are recorded from level 1
    up; at level 0 the query cannot distinguish "not detected" from
    "not recorded").
    """
    _require_trace_level(trace, 1, "detection_latency_rounds")
    for rec in trace.select(category="cons_hv"):
        if (rec.data["diagnosed_round"] == fault_round
                and rec.data["cons_hv"][faulty_slot - 1] == 0):
            return rec.data["round_index"] - fault_round
    return None


def availability_seconds(trace: Trace, node_id: int, horizon: float) -> float:
    """Seconds node ``node_id`` stayed active within ``[0, horizon]``.

    Counts reintegration: the node is unavailable between each
    isolation and the following reintegration (or the horizon).
    """
    events: List[Tuple[float, str]] = []
    for rec in trace.select(category="isolation"):
        if rec.data.get("isolated") == node_id:
            events.append((rec.time, "down"))
    for rec in trace.select(category="reintegration"):
        if rec.data.get("reintegrated") == node_id:
            events.append((rec.time, "up"))
    events.sort()
    available = 0.0
    up_since: Optional[float] = 0.0
    for t, kind in events:
        if t > horizon:
            break
        if kind == "down" and up_since is not None:
            available += t - up_since
            up_since = None
        elif kind == "up" and up_since is None:
            up_since = t
    if up_since is not None:
        available += horizon - up_since
    return available


def view_changes(trace: Trace, node_id: Optional[int] = None) -> List[TraceRecord]:
    """Membership view-change records, optionally for one observer."""
    return trace.select(category="view", node=node_id)


__all__ = [
    "InsufficientTraceError",
    "health_vectors_by_node",
    "consistency_violations",
    "diagnoses_for_round",
    "completeness_holds",
    "correctness_holds",
    "first_isolation_time",
    "isolation_round",
    "detection_latency_rounds",
    "availability_seconds",
    "view_changes",
]
