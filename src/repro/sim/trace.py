"""Structured trace recording and querying.

A :class:`Trace` is an append-only log of :class:`TraceRecord` entries,
each stamped with simulation time and a category.  The experiment
harnesses (Sec. 8 validation, Sec. 9 tuning) work by querying traces:
"when did node 2 first appear as faulty in a consistent health vector?",
"at which time was node 1 isolated?", and so on.

Categories used throughout the library:

``tx``          a frame transmission (sender, round, slot, outcome)
``rx``          a frame delivery at one receiver (validity bit)
``syndrome``    a local syndrome formed by a diagnostic job
``cons_hv``     a consistent health vector computed by a node
``penalty``     a penalty/reward counter update
``isolation``   a node isolated another node
``view``        a membership view change
``clique``      a minority-clique accusation
``reintegration``  an isolated node readmitted
``fault``       a fault-injection directive taking effect
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    category:
        One of the category strings documented in the module docstring.
    node:
        The node observing/producing the record, or ``None`` for
        system-level records (e.g. bus-level fault injections).
    data:
        Category-specific payload (kept as a plain dict so traces can be
        serialised trivially).
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


#: Categories still recorded when the trace runs at level 0: protocol
#: decisions (and the injections that provoked them) are rare, cheap,
#: and the minimum needed to interpret an experiment after the fact.
_DECISION_CATEGORIES = frozenset(
    {"isolation", "view", "clique", "reintegration", "fault"})


class Trace:
    """Append-only, queryable event log.

    Parameters
    ----------
    level:
        Recording verbosity, mirroring the protocol trace levels.  At
        the default (2, full) every :meth:`record` call appends.  At
        ``level <= 0`` the instance swaps :meth:`record` for a
        decisions-only dispatch that drops per-slot categories
        (``tx``/``rx``/``syndrome``/...) without allocating a record,
        which is what makes ``trace_level=0`` runs allocation-free on
        the hot path.
    """

    def __init__(self, level: int = 2) -> None:
        self._records: List[TraceRecord] = []
        self.level = level
        if level <= 0:
            # Instance-level override: hot-path callers pay one dict
            # lookup instead of a per-call level test.
            self.record = self._record_decisions  # type: ignore[assignment]

    # -- recording ------------------------------------------------------
    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> Optional[TraceRecord]:
        """Append a record and return it.

        At trace level 0 only decision categories are kept and ``None``
        is returned for dropped records.
        """
        rec = TraceRecord(time=time, category=category, node=node, data=dict(data))
        self._records.append(rec)
        return rec

    def _record_decisions(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> Optional[TraceRecord]:
        if category not in _DECISION_CATEGORIES:
            return None
        rec = TraceRecord(time=time, category=category, node=node, data=dict(data))
        self._records.append(rec)
        return rec

    # -- querying -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Return records matching all provided filters, in time order."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    @staticmethod
    def _matches(rec: TraceRecord, filters: Dict[str, Any]) -> bool:
        """Filter matching for first/last/count.

        The special key ``node`` matches the record's node attribute;
        all other keys match entries of the data payload.
        """
        for k, v in filters.items():
            if k == "node":
                if rec.node != v:
                    return False
            elif rec.data.get(k) != v:
                return False
        return True

    def first(self, category: str, **filters: Any) -> Optional[TraceRecord]:
        """First record of ``category`` matching ``filters``."""
        for rec in self._records:
            if rec.category == category and self._matches(rec, filters):
                return rec
        return None

    def last(self, category: str, **filters: Any) -> Optional[TraceRecord]:
        """Last record of ``category`` matching ``filters``."""
        result = None
        for rec in self._records:
            if rec.category == category and self._matches(rec, filters):
                result = rec
        return result

    def count(self, category: str, **filters: Any) -> int:
        """Number of records of ``category`` matching ``filters``."""
        return sum(1 for rec in self._records
                   if rec.category == category and self._matches(rec, filters))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialise the trace to plain dictionaries (JSON-friendly)."""
        return [
            {"time": r.time, "category": r.category, "node": r.node, **r.data}
            for r in self._records
        ]


__all__ = ["Trace", "TraceRecord"]
