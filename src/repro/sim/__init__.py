"""Deterministic discrete-event simulation substrate.

This package provides the simulation engine that the time-triggered
cluster (:mod:`repro.tt`) runs on: an event queue with deterministic
tie-breaking (:mod:`repro.sim.engine`), named random substreams
(:mod:`repro.sim.rng`) and structured trace recording
(:mod:`repro.sim.trace`).
"""

from .engine import Engine, SimulationError
from .events import Event, EventPriority
from .rng import RandomStreams, derive_seed
from .trace import Trace, TraceRecord

__all__ = [
    "Engine",
    "SimulationError",
    "Event",
    "EventPriority",
    "RandomStreams",
    "derive_seed",
    "Trace",
    "TraceRecord",
]
