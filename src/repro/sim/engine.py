"""Deterministic discrete-event simulation engine.

The engine is a classic calendar-queue simulator specialised for the
needs of this reproduction:

* **Determinism.**  Events are totally ordered by
  ``(time, priority, insertion sequence)``.  Running the same scenario
  with the same seeds produces byte-identical traces.
* **Sub-slot resolution.**  Simulation time is a float in seconds.  TDMA
  slot boundaries, per-receiver deliveries and application job
  executions are individual events, which lets the time-triggered layer
  express the paper's *unconstrained node scheduling* (diagnostic jobs
  may run at any offset within the round).
* **Bounded floating-point drift.**  All recurring activities derive
  their activation times from integer round/slot indices multiplied by
  the period, never by accumulating increments, so time arithmetic stays
  exact for the simulation horizons used in the experiments.

Typical use::

    engine = Engine()
    engine.schedule(0.0, EventPriority.JOB, lambda: print("hello"))
    engine.run(until=1.0)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .events import Event, EventPriority


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Engine:
    """Deterministic discrete-event scheduler.

    Attributes
    ----------
    now:
        Current simulation time in seconds.  Starts at 0.0.
    """

    def __init__(self, metrics: Optional[Any] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._running = False
        self._stopped = False
        self._executed_events = 0
        # Optional online observability (repro.obs.MetricsRegistry);
        # kept as a duck-typed argument so the engine stays importable
        # without the obs package.
        self._metrics = metrics
        self._m_on = metrics is not None and metrics.enabled
        self._timing_on = self._m_on and metrics.timing
        self._m_events = (metrics.counter("engine.events_executed")
                          if self._m_on else None)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        priority: int,
        callback: Callable[[], Any],
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling at the current instant is allowed (the event runs
        within the current ``run`` call, after any already-queued events
        with smaller priority); scheduling strictly in the past raises
        :class:`SimulationError`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = Event(time=time, priority=int(priority), callback=callback,
                      description=description)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        priority: int,
        callback: Callable[[], Any],
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, priority, callback, description)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties or a bound is hit.

        Parameters
        ----------
        until:
            Inclusive time horizon.  Events scheduled at exactly
            ``until`` execute; later events remain queued.
        max_events:
            Optional safety bound on the number of events executed in
            this call.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if event.time < self.now:
                    raise SimulationError("event queue corrupted: time went backwards")
                self.now = event.time
                event.callback()
                executed += 1
                self._executed_events += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped:
                # Advance the clock to the horizon even if the queue
                # drained earlier, so callers can resume seamlessly.
                self.now = max(self.now, until)
        finally:
            self._running = False
            if self._m_on:
                self._m_events.inc(executed)
        return executed

    def run_batch(self, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> int:
        """Bulk-execute events with minimal per-event overhead.

        Semantically identical to :meth:`run` (same event ordering, same
        ``until`` / ``max_events`` / ``stop`` behaviour) but the inner
        loop hoists the queue and clock into locals and drops the
        per-event clock-regression audit, which measurably reduces the
        per-event cost on hot simulation paths.  :class:`Cluster` drives
        rounds through this entry point.
        """
        if self._timing_on:
            with self._metrics.timer("engine.run"):
                return self._run_batch(until, max_events)
        return self._run_batch(until, max_events)

    def _run_batch(self, until: Optional[float],
                   max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if self._stopped:
                    break
                event = queue[0]
                if until is not None and event.time > until:
                    break
                pop(queue)
                if event.cancelled:
                    continue
                self.now = event.time
                event.callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped:
                self.now = max(self.now, until)
        finally:
            self._running = False
            self._executed_events += executed
            if self._m_on:
                self._m_events.inc(executed)
        return executed

    def stop(self) -> None:
        """Request the current ``run`` call to return after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def executed_events(self) -> int:
        """Total number of events executed over the engine's lifetime."""
        return self._executed_events

    def peek(self) -> Optional[Event]:
        """The next live event without executing it, or ``None``.

        Cancelled events at the head of the queue are discarded as a
        side effect, exactly as :meth:`run` would skip them.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        event = self.peek()
        return event.time if event is not None else None


__all__ = ["Engine", "Event", "EventPriority", "SimulationError"]
