"""Event primitives for the discrete-event simulation engine.

The simulator executes *events* in deterministic order.  An event is a
callback scheduled at an absolute simulation time with an explicit
*priority* used to break ties between events scheduled at the same
instant.  Determinism is essential for this reproduction: the paper's
experiments (Sec. 8) are repeated 100 times per class, and we want each
repetition to be exactly reproducible from its seed.

Priorities encode the causal structure of one TDMA slot:

1. a transmission is placed on the bus (``SLOT_TRANSMIT``),
2. receivers update interface variables and validity bits
   (``SLOT_DELIVER``),
3. application jobs scheduled "after slot j" execute (``JOB``),
4. bookkeeping such as trace snapshots run last (``OBSERVER``).

Lower numeric priority runs first.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-breaking order for events scheduled at the same instant."""

    #: Fault-injection directives take effect before the transmission
    #: they affect.
    INJECTOR = 0
    #: A sender's communication controller puts a frame on the bus.
    SLOT_TRANSMIT = 10
    #: Receivers' controllers latch the frame into interface variables.
    SLOT_DELIVER = 20
    #: Host jobs (diagnostic jobs, application jobs) execute.
    JOB = 30
    #: Passive observers (trace snapshots, metric probes).
    OBSERVER = 40
    #: Simulation-control events (stop requests) run last.
    CONTROL = 50


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``; ``seq`` is a global
    monotonically increasing counter, so two events with identical time
    and priority execute in the order they were scheduled.  The callback
    and its description are excluded from the ordering.
    """

    time: float
    priority: int
    seq: int = field(default_factory=lambda: next(_sequence))
    callback: Callable[[], Any] = field(compare=False, default=lambda: None)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.6f}, prio={self.priority}, "
            f"seq={self.seq}, {self.description!r})"
        )
