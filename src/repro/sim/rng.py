"""Seeded, per-component random streams.

Every stochastic component of a simulation (a fault process, a dynamic
scheduler, a malicious node) draws from its own named substream derived
from a single experiment seed.  This gives two properties the paper's
experimental methodology needs:

* **Reproducibility** — an experiment class repeated with seeds
  ``0..99`` always produces the same 100 runs.
* **Insensitivity to composition** — adding a new stochastic component
  does not perturb the draws seen by existing components, because
  substreams are keyed by name rather than by draw order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for substream ``name``.

    Uses SHA-256 over ``(master_seed, name)`` so the mapping is stable
    across Python versions and process invocations (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of named :class:`random.Random` substreams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def is_fresh(self, name: str) -> bool:
        """Whether substream ``name`` has never been handed out.

        A fresh stream is guaranteed to start at its seed; a stream that
        already exists may have advanced.  Deserialization paths that
        need reproducible draw sequences (e.g. rebuilding a stochastic
        fault process) use this to refuse resuming mid-sequence.
        """
        return name not in self._streams

    def fork(self, name: str) -> "RandomStreams":
        """Create an independent registry namespaced under ``name``.

        Useful when a sub-experiment needs its own family of substreams
        (e.g. one fork per repetition of an experiment class).
        """
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))


__all__ = ["RandomStreams", "derive_seed"]
