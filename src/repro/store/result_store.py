"""Content-addressed, corruption-tolerant result store for spec runs.

Large campaigns (Secs. 8–9 style Monte Carlo sweeps) re-execute the
same :class:`~repro.spec.RunSpec` values over and over — across
resumed runs, across parameter studies sharing a baseline, across CI
re-runs.  Every run is deterministic and content-addressed
(:meth:`RunSpec.full_digest`), so its reduced result and metrics
snapshot can be cached once and replayed forever.

Layout under a configurable cache directory::

    <root>/index.sqlite          key -> (shard, offset, length, sha256)
    <root>/shards/<kk>.jsonl     append-only JSONL payload records
    <root>/campaigns/<id>.json   campaign checkpoint states (see
                                 repro.campaign.state)

Design rules, in order:

1. **Keys are content addresses.**  :func:`store_key` is
   ``full_digest:reducer:package_version`` — the untruncated spec
   hash, the reducer that produced the payload, and the code version
   that ran it.  Upgrading the package or changing the reducer
   naturally invalidates the cache without any explicit flush.
2. **Writes are atomic at record granularity.**  ``put`` appends one
   complete JSONL record (single buffered write + flush) and only then
   commits the index row; a crash between the two leaves an orphan
   record that GC reclaims, never a dangling index entry.
3. **Reads never trust the shard.**  ``get`` re-verifies length, key
   and sha256 of the record bytes; a truncated, bit-rotten or
   mis-indexed record is dropped from the index and reported as a miss
   (counter ``store.corrupt``), so the campaign simply re-runs that
   task — corruption costs work, never a crash.
4. **Payloads are typed, not pickled blindly.**  JSON-native values
   are stored as JSON (inspectable with ``jq``); anything else falls
   back to pickle, base64-wrapped; large payloads are zlib-compressed.
   :func:`encode_value`/:func:`decode_value` round-trip equal values.

The store is single-writer *per handle*: a :class:`ResultStore`
instance (and its SQLite connection) belongs to one thread.  Several
instances may share one root concurrently — the HTTP service's worker
pool opens one per worker thread — which SQLite serialises through
its file locks: every connection sets a ``busy_timeout`` and the few
operations that can still surface ``SQLITE_BUSY`` under lock
contention retry with bounded backoff (counter
``store.busy_retries``).  Shard appends from concurrent instances in
the same process are serialised by a module lock so offsets recorded
in the index always match the bytes on disk.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..obs.registry import NULL_REGISTRY

#: Record schema tag stamped into every shard record.
STORE_SCHEMA = "repro-store/1"

#: Payloads whose serialized form exceeds this are zlib-compressed.
COMPRESS_THRESHOLD = 4096

_ENCODINGS = ("json", "json+zlib", "pickle", "pickle+zlib")

#: Seconds SQLite waits for a competing connection's lock before
#: surfacing ``SQLITE_BUSY`` (per connection; see ``busy_timeout``).
DEFAULT_BUSY_TIMEOUT = 5.0

#: Bounded retries layered on top of the busy timeout for index
#: operations, with doubling backoff starting here.
_BUSY_RETRIES = 5
_BUSY_BACKOFF = 0.02

#: Serialises shard-file appends across every ResultStore instance in
#: this process, so the offset each writer records in its index row is
#: exactly where its record landed.  (Cross-process writers are out of
#: scope: the service is one process; campaign workers ship results
#: home through the pool rather than writing shards themselves.)
_APPEND_LOCK = threading.Lock()


def default_cache_dir() -> str:
    """The store root used when none is given.

    ``REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro-diag``
    or ``~/.cache/repro-diag``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-diag")


def store_key(spec, reducer: Optional[str] = None,
              version: Optional[str] = None) -> str:
    """The content address of one spec's reduced result.

    ``full_digest`` pins the run inputs, ``reducer`` the
    post-processing, ``version`` the code that executed — so stale
    payloads can never shadow a changed computation.
    """
    if version is None:
        from .. import __version__ as version
    name = reducer if reducer is not None else (spec.reducer or "summary")
    return f"{spec.full_digest()}:{name}:{version}"


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------
def encode_value(value: Any,
                 compress_threshold: int = COMPRESS_THRESHOLD
                 ) -> Tuple[str, str]:
    """Encode ``value`` as ``(enc, payload_text)``.

    JSON is preferred whenever it round-trips the value *exactly*
    (``json.loads(json.dumps(v)) == v``); otherwise the payload is
    pickled and base64-wrapped.  Either form is zlib-compressed past
    ``compress_threshold`` bytes.
    """
    enc = None
    try:
        text = json.dumps(value, sort_keys=True, separators=(",", ":"))
        if json.loads(text) == value:
            enc = "json"
    except (TypeError, ValueError):
        pass
    if enc is None:
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        enc = "pickle"
        text = base64.b64encode(raw).decode("ascii")
    if len(text) > compress_threshold:
        packed = zlib.compress(text.encode("utf-8"), level=6)
        return enc + "+zlib", base64.b64encode(packed).decode("ascii")
    return enc, text


def decode_value(enc: str, payload: str) -> Any:
    """Invert :func:`encode_value`."""
    if enc not in _ENCODINGS:
        raise ValueError(f"unknown payload encoding {enc!r}")
    if enc.endswith("+zlib"):
        payload = zlib.decompress(base64.b64decode(payload)).decode("utf-8")
        enc = enc[:-len("+zlib")]
    if enc == "json":
        return json.loads(payload)
    return pickle.loads(base64.b64decode(payload))


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
@dataclass
class GCStats:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    evicted: int = 0
    orphans_dropped: int = 0
    kept: int = 0
    bytes_before: int = 0
    bytes_after: int = 0


class ResultStore:
    """SQLite-indexed, shard-backed map from store keys to payloads.

    Counters (on the registry passed as ``metrics``): ``store.hit``,
    ``store.miss``, ``store.put``, ``store.corrupt``.  These belong to
    the *campaign engine's* registry, never to the merged run metrics —
    cache behaviour is an execution detail and must not perturb
    byte-identical run reports.
    """

    def __init__(self, root: Optional[str] = None, metrics=NULL_REGISTRY,
                 compress_threshold: int = COMPRESS_THRESHOLD,
                 busy_timeout: float = DEFAULT_BUSY_TIMEOUT) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.metrics = metrics
        self.compress_threshold = compress_threshold
        self.shard_dir = os.path.join(self.root, "shards")
        self.campaign_dir = os.path.join(self.root, "campaigns")
        os.makedirs(self.shard_dir, exist_ok=True)
        os.makedirs(self.campaign_dir, exist_ok=True)
        self._db = sqlite3.connect(os.path.join(self.root, "index.sqlite"),
                                   timeout=busy_timeout)
        self._db.execute(
            f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}")
        self._retry(lambda: self._db.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " key TEXT PRIMARY KEY,"
            " shard TEXT NOT NULL,"
            " offset INTEGER NOT NULL,"
            " length INTEGER NOT NULL,"
            " sha256 TEXT NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL)"))
        self._commit()

    def _retry(self, operation: Callable[[], Any]) -> Any:
        """Run one index operation, absorbing transient ``SQLITE_BUSY``.

        The connection's busy timeout already waits out ordinary lock
        contention; this bounded retry (doubling backoff, counter
        ``store.busy_retries``) covers the residual cases — e.g. a
        read transaction that must restart to upgrade to a write lock
        while another connection holds it.
        """
        delay = _BUSY_BACKOFF
        for _attempt in range(_BUSY_RETRIES):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                text = str(exc).lower()
                if "locked" not in text and "busy" not in text:
                    raise
                self.metrics.counter("store.busy_retries").inc()
                time.sleep(delay)
                delay *= 2
        return operation()

    def _commit(self) -> None:
        self._retry(self._db.commit)

    # -- context / lifecycle -------------------------------------------
    def close(self) -> None:
        """Close the SQLite index handle."""
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

    def keys(self) -> Iterator[str]:
        """Every indexed key, sorted."""
        for (key,) in self._db.execute(
                "SELECT key FROM entries ORDER BY key"):
            yield key

    # -- primitives ----------------------------------------------------
    def _shard_path(self, shard: str) -> str:
        return os.path.join(self.shard_dir, shard)

    @staticmethod
    def _shard_for(key: str) -> str:
        return key[:2] + ".jsonl"

    def has(self, key: str) -> bool:
        """Whether the index lists ``key`` (no payload verification)."""
        row = self._db.execute("SELECT 1 FROM entries WHERE key = ?",
                               (key,)).fetchone()
        return row is not None

    def get(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or None on miss.

        Any record that fails verification (short read, key mismatch,
        checksum mismatch, undecodable payload) is evicted from the
        index and reported as a miss — the caller re-runs the task.
        """
        row = self._db.execute(
            "SELECT shard, offset, length, sha256 FROM entries"
            " WHERE key = ?", (key,)).fetchone()
        if row is None:
            self.metrics.counter("store.miss").inc()
            return None
        shard, offset, length, digest = row
        record = self._read_record(shard, offset, length, digest, key)
        if record is None:
            self.metrics.counter("store.corrupt").inc()
            self.metrics.counter("store.miss").inc()
            self._retry(lambda: self._db.execute(
                "DELETE FROM entries WHERE key = ?", (key,)))
            self._commit()
            return None
        self.metrics.counter("store.hit").inc()
        self._retry(lambda: self._db.execute(
            "UPDATE entries SET last_used = ? WHERE key = ?",
            (time.time(), key)))
        self._commit()
        return decode_value(record["enc"], record["payload"])

    def _read_record(self, shard: str, offset: int, length: int,
                     digest: str, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._shard_path(shard), "rb") as fh:
                fh.seek(offset)
                blob = fh.read(length)
        except OSError:
            return None
        return self._verify_record(blob, length, digest, key)

    @staticmethod
    def _verify_record(blob: bytes, length: int, digest: str,
                       key: str) -> Optional[Dict[str, Any]]:
        if len(blob) != length:
            return None  # truncated shard: skip and re-run, never crash
        if hashlib.sha256(blob).hexdigest() != digest:
            return None
        try:
            record = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key \
                or record.get("schema") != STORE_SCHEMA:
            return None
        if record.get("enc") not in _ENCODINGS:
            return None
        return record

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (last write wins)."""
        enc, payload = encode_value(value, self.compress_threshold)
        line = json.dumps({"schema": STORE_SCHEMA, "key": key,
                           "enc": enc, "payload": payload},
                          sort_keys=True, separators=(",", ":"))
        blob = line.encode("utf-8")
        shard = self._shard_for(key)
        with _APPEND_LOCK:
            with open(self._shard_path(shard), "ab") as fh:
                offset = fh.tell()
                fh.write(blob + b"\n")
                fh.flush()
                os.fsync(fh.fileno())
        now = time.time()
        self._retry(lambda: self._db.execute(
            "INSERT OR REPLACE INTO entries"
            " (key, shard, offset, length, sha256, created, last_used)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (key, shard, offset, len(blob),
             hashlib.sha256(blob).hexdigest(), now, now)))
        self._commit()
        self.metrics.counter("store.put").inc()

    # -- batched primitives --------------------------------------------
    #: Keys per IN-clause chunk, comfortably under SQLite's default
    #: 999-variable limit.
    _IN_CHUNK = 400

    def get_many(self, keys) -> Dict[str, Any]:
        """Payloads for every hit among ``keys``, as ``{key: value}``.

        The campaign warm path used to issue one indexed SELECT, one
        last-used UPDATE and one commit *per task*; this consults the
        index in :data:`_IN_CHUNK`-sized ``IN`` batches, opens each
        shard file once for all its records, batches the last-used
        refresh through ``executemany`` and commits once.  Verification
        and eviction semantics are identical to :meth:`get` — counters
        included — so callers may mix the two freely.
        """
        keys = list(keys)
        rows: Dict[str, Tuple[str, int, int, str]] = {}
        for start in range(0, len(keys), self._IN_CHUNK):
            chunk = keys[start:start + self._IN_CHUNK]
            marks = ",".join("?" * len(chunk))
            for key, shard, offset, length, digest in self._db.execute(
                    f"SELECT key, shard, offset, length, sha256"
                    f" FROM entries WHERE key IN ({marks})", chunk):
                rows[key] = (shard, offset, length, digest)

        by_shard: Dict[str, list] = {}
        for key in keys:
            if key in rows:
                by_shard.setdefault(rows[key][0], []).append(key)
            else:
                self.metrics.counter("store.miss").inc()

        found: Dict[str, Any] = {}
        corrupt: list = []
        for shard, shard_keys in sorted(by_shard.items()):
            try:
                fh = open(self._shard_path(shard), "rb")
            except OSError:
                corrupt.extend(shard_keys)
                continue
            with fh:
                for key in shard_keys:
                    _, offset, length, digest = rows[key]
                    fh.seek(offset)
                    record = self._verify_record(fh.read(length), length,
                                                 digest, key)
                    if record is None:
                        corrupt.append(key)
                        continue
                    try:
                        found[key] = decode_value(record["enc"],
                                                  record["payload"])
                    except Exception:
                        corrupt.append(key)

        for key in corrupt:
            self.metrics.counter("store.corrupt").inc()
            self.metrics.counter("store.miss").inc()
            self._retry(lambda k=key: self._db.execute(
                "DELETE FROM entries WHERE key = ?", (k,)))
        if found:
            self.metrics.counter("store.hit").inc(len(found))
            now = time.time()
            self._retry(lambda: self._db.executemany(
                "UPDATE entries SET last_used = ? WHERE key = ?",
                [(now, key) for key in found]))
        if found or corrupt:
            self._commit()
        return found

    def put_many(self, items) -> None:
        """Store every ``(key, value)`` pair (last write wins).

        One shard append + fsync per distinct shard and one index
        commit for the whole batch — the engine uses this to commit a
        replicate batch's worth of results in one durability round-trip
        instead of one per replicate.
        """
        by_shard: Dict[str, list] = {}
        count = 0
        for key, value in items:
            enc, payload = encode_value(value, self.compress_threshold)
            line = json.dumps({"schema": STORE_SCHEMA, "key": key,
                               "enc": enc, "payload": payload},
                              sort_keys=True, separators=(",", ":"))
            by_shard.setdefault(self._shard_for(key), []).append(
                (key, line.encode("utf-8")))
            count += 1
        if not count:
            return
        now = time.time()
        index_rows = []
        with _APPEND_LOCK:
            for shard, records in sorted(by_shard.items()):
                with open(self._shard_path(shard), "ab") as fh:
                    for key, blob in records:
                        offset = fh.tell()
                        fh.write(blob + b"\n")
                        index_rows.append(
                            (key, shard, offset, len(blob),
                             hashlib.sha256(blob).hexdigest(), now, now))
                    fh.flush()
                    os.fsync(fh.fileno())
        self._retry(lambda: self._db.executemany(
            "INSERT OR REPLACE INTO entries"
            " (key, shard, offset, length, sha256, created, last_used)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)", index_rows))
        self._commit()
        self.metrics.counter("store.put").inc(count)

    def keys_for_prefix(self, prefix: str) -> List[str]:
        """Sorted keys starting with ``prefix``, from the index alone.

        The prefix of a store key is a spec digest, so this answers
        "which cached results exist for this spec?" (across reducers
        and code versions) without touching any shard — the provenance
        query ``results diff`` makes per diverging digest.
        """
        escaped = (prefix.replace("\\", "\\\\")
                   .replace("%", "\\%").replace("_", "\\_"))
        rows = self._db.execute(
            "SELECT key FROM entries WHERE key LIKE ? ESCAPE '\\'"
            " ORDER BY key", (escaped + "%",))
        return [key for (key,) in rows]

    # -- maintenance ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Index and shard footprint (for ``campaign status``).

        Alongside the totals, ``shards`` breaks entries and bytes down
        per shard file — orphaned bytes show up as shards whose size
        outgrows their live entries, which is what ``gc`` reclaims.
        """
        shards: Dict[str, Dict[str, int]] = {}
        for name in sorted(os.listdir(self.shard_dir)):
            shards[name] = {
                "entries": 0,
                "bytes": os.path.getsize(self._shard_path(name)),
            }
        for shard, count in self._db.execute(
                "SELECT shard, COUNT(*) FROM entries GROUP BY shard"):
            shards.setdefault(shard, {"entries": 0, "bytes": 0})
            shards[shard]["entries"] = count
        shard_bytes = sum(s["bytes"] for s in shards.values())
        return {"entries": len(self), "shard_bytes": shard_bytes,
                "root": self.root, "shards": shards}

    def gc(self, max_entries: Optional[int] = None,
           max_age_seconds: Optional[float] = None) -> GCStats:
        """Evict old entries and compact shards.

        Entries older than ``max_age_seconds`` (by ``last_used``) go
        first; if more than ``max_entries`` remain, the least recently
        used excess goes too.  Shards are then rewritten to contain
        exactly the surviving records — dropping orphans from
        interrupted ``put``s and superseded duplicate keys — with index
        offsets updated atomically per shard.
        """
        stats = GCStats(bytes_before=self.stats()["shard_bytes"])
        now = time.time()
        if max_age_seconds is not None:
            cur = self._db.execute(
                "DELETE FROM entries WHERE last_used < ?",
                (now - max_age_seconds,))
            stats.evicted += cur.rowcount
        if max_entries is not None:
            excess = len(self) - max_entries
            if excess > 0:
                self._db.execute(
                    "DELETE FROM entries WHERE key IN ("
                    " SELECT key FROM entries ORDER BY last_used ASC"
                    f" LIMIT {int(excess)})")
                stats.evicted += excess
        self._db.commit()
        stats.kept = len(self)
        stats.orphans_dropped = self._compact()
        stats.bytes_after = self.stats()["shard_bytes"]
        return stats

    def _compact(self) -> int:
        """Rewrite every shard keeping only live, verifiable records.

        Returns the number of shard records dropped: orphans from
        interrupted ``put``s, records superseded by a later write of
        the same key, evicted entries' payloads, and corrupt bytes.
        """
        dropped = 0
        for shard in sorted(os.listdir(self.shard_dir)):
            path = self._shard_path(shard)
            if not os.path.isfile(path):
                continue
            rows = self._db.execute(
                "SELECT key, offset, length, sha256 FROM entries"
                " WHERE shard = ? ORDER BY offset", (shard,)).fetchall()
            live = []
            for key, offset, length, digest in rows:
                if self._read_record(shard, offset, length, digest,
                                     key) is not None:
                    live.append((key, offset, length))
                else:
                    self._db.execute("DELETE FROM entries WHERE key = ?",
                                     (key,))
            with open(path, "rb") as fh:
                total_records = sum(1 for _ in fh)
            dropped += max(0, total_records - len(live))
            tmp = path + ".gc"
            new_offsets = []
            with open(path, "rb") as src, open(tmp, "wb") as dst:
                for key, offset, length in live:
                    src.seek(offset)
                    blob = src.read(length)
                    new_offsets.append((dst.tell(), key))
                    dst.write(blob + b"\n")
                dst.flush()
                os.fsync(dst.fileno())
            os.replace(tmp, path)
            for new_offset, key in new_offsets:
                self._db.execute(
                    "UPDATE entries SET offset = ? WHERE key = ?",
                    (new_offset, key))
            self._db.commit()
            if not live:
                os.remove(path)
        self._db.execute("VACUUM")
        return dropped


__all__ = [
    "COMPRESS_THRESHOLD",
    "DEFAULT_BUSY_TIMEOUT",
    "STORE_SCHEMA",
    "GCStats",
    "ResultStore",
    "decode_value",
    "default_cache_dir",
    "encode_value",
    "store_key",
]
