"""Content-addressed result store: cache every deterministic run once.

A :class:`~repro.spec.RunSpec` is a content address — the same spec,
reducer and package version always produce the same reduced result and
metrics snapshot — so campaign results belong in a persistent store
keyed by :func:`store_key`::

    from repro.store import ResultStore, store_key

    with ResultStore("/tmp/cache") as store:
        key = store_key(spec)
        cached = store.get(key)           # None on miss
        if cached is None:
            cached = {"result": ..., "snapshot": ...}
            store.put(key, cached)

The store survives crashes (atomic record appends, index committed
after the payload), tolerates corruption (a damaged record reads as a
miss and is evicted, never a crash) and supports eviction/compaction
via :meth:`ResultStore.gc`.  See :mod:`repro.store.result_store` for
the format and :mod:`repro.campaign` for the engine that drives it.
"""

from .result_store import (
    COMPRESS_THRESHOLD,
    STORE_SCHEMA,
    GCStats,
    ResultStore,
    decode_value,
    default_cache_dir,
    encode_value,
    store_key,
)

__all__ = [
    "COMPRESS_THRESHOLD",
    "STORE_SCHEMA",
    "GCStats",
    "ResultStore",
    "decode_value",
    "default_cache_dir",
    "encode_value",
    "store_key",
]
