"""Lightweight online metrics: counters, gauges, fixed-bucket histograms.

The protocol layers update a :class:`MetricsRegistry` *online* while a
simulation runs, so the quantitative behaviour of a run (votes taken,
fallbacks, isolations, fast-path slot counts, ...) is observable even
when the trace records nothing (``trace_level=0``) — production
diagnosis systems expose their own health instead of relying on
post-hoc log scraping.

Design constraints, in order:

1. **Determinism.**  A metrics snapshot is a pure function of the
   simulated behaviour: plain integer counters, integer gauges and
   histograms with *fixed, declared bucket bounds*, exported with
   sorted keys.  Two runs of the same seed produce byte-identical
   snapshots, and snapshots merge commutatively (sums of integers), so
   a process-pool sweep yields the same merged report for every worker
   count and merge order.  Wall-clock *timings* are inherently
   nondeterministic and therefore live in a separate side channel
   (:meth:`MetricsRegistry.timings_snapshot`) that is excluded from
   :meth:`MetricsRegistry.snapshot`.
2. **Zero overhead when disabled.**  Mirroring the ``Trace`` fast-off
   pattern, a disabled registry hands out shared null instruments whose
   methods are no-ops, and exposes :attr:`MetricsRegistry.enabled` so
   per-slot hot paths can skip instrumentation with one cached boolean
   test.  The module-level :data:`NULL_REGISTRY` is the default wired
   through the whole stack.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Dict, Iterable, List, Sequence, Tuple


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value.

    Gauges are summed when snapshots are merged (see
    :func:`merge_snapshots`), so across a sweep a gauge reads as a
    total (e.g. total rounds simulated); keep gauge values integral so
    the merge stays order-independent.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        """Overwrite the gauge value."""
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` to the gauge (a gauge may move both ways)."""
        self.value += n


class Histogram:
    """A histogram over fixed, declared bucket bounds.

    ``bounds = (b0, b1, ..., bk)`` defines ``k + 2`` buckets: values
    ``v <= b0``, ``b0 < v <= b1``, ..., ``v > bk`` (the overflow
    bucket).  Only bucket *counts* are stored — no floating-point sums
    — so snapshots are deterministic and merge by integer addition.
    """

    __slots__ = ("name", "bounds", "buckets", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: int) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullTimer:
    """Shared no-op context manager for disabled timing."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _Timer:
    """Accumulates wall-clock time into a ``[count, seconds]`` cell."""

    __slots__ = ("_cell", "_t0")

    def __init__(self, cell: List[float]) -> None:
        self._cell = cell
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        cell = self._cell
        cell[0] += 1
        cell[1] += perf_counter() - self._t0


_NULL_INSTRUMENT = _NullInstrument()
_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named instruments with deterministic snapshot/merge semantics.

    Parameters
    ----------
    enabled:
        When false, every ``counter``/``gauge``/``histogram`` request
        returns the shared null instrument and :meth:`snapshot` is
        empty; the protocol layers additionally consult
        :attr:`enabled` to skip instrumentation branches entirely.
    timing:
        Opt-in wall-clock phase timing.  Off by default because timing
        results are nondeterministic; they never appear in
        :meth:`snapshot` (only in :meth:`timings_snapshot`).
    """

    def __init__(self, enabled: bool = True, timing: bool = False) -> None:
        self.enabled = enabled
        self.timing = bool(timing and enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timings: Dict[str, List[float]] = {}

    # -- instrument registration ---------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """The histogram named ``name`` with fixed ``bounds``.

        Re-registration with different bounds is a bug and raises.
        """
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        elif hist.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{hist.bounds}, got {tuple(bounds)}")
        return hist

    def timer(self, name: str):
        """Context manager accumulating wall-clock time under ``name``.

        A shared no-op when timing is disabled; hot paths should still
        guard on :attr:`timing` to avoid the call entirely.
        """
        if not self.timing:
            return _NULL_TIMER
        cell = self._timings.get(name)
        if cell is None:
            cell = self._timings[name] = [0, 0.0]
        return _Timer(cell)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """The deterministic state of every instrument, sorted by name.

        The result is a plain (picklable, JSON-friendly) dict; timings
        are deliberately excluded — see :meth:`timings_snapshot`.
        """
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"bounds": list(h.bounds), "buckets": list(h.buckets),
                    "count": h.count}
                for n, h in sorted(self._histograms.items())
            },
        }

    def timings_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Accumulated wall-clock phase timings (nondeterministic)."""
        return {
            name: {"count": int(cell[0]), "seconds": cell[1]}
            for name, cell in sorted(self._timings.items())
        }


def empty_snapshot() -> Dict[str, Dict]:
    """The snapshot of a registry that observed nothing."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Merge snapshots by integer addition (order-independent).

    Counters, gauges and histogram buckets are summed; histograms with
    the same name must declare identical bounds.  Because every merge
    operation is commutative and associative on integers, the merged
    snapshot is independent of worker scheduling and merge order —
    the property the parallel runner's determinism contract needs.
    """
    merged = empty_snapshot()
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {"bounds": list(hist["bounds"]),
                                    "buckets": list(hist["buckets"]),
                                    "count": hist["count"]}
                continue
            if existing["bounds"] != list(hist["bounds"]):
                raise ValueError(
                    f"histogram {name!r} merged with mismatched bounds: "
                    f"{existing['bounds']} vs {list(hist['bounds'])}")
            existing["buckets"] = [a + b for a, b in
                                   zip(existing["buckets"], hist["buckets"])]
            existing["count"] += hist["count"]
    merged["counters"] = dict(sorted(counters.items()))
    merged["gauges"] = dict(sorted(gauges.items()))
    merged["histograms"] = dict(sorted(histograms.items()))
    return merged


#: Shared disabled registry: the default everywhere a ``metrics``
#: argument is omitted, so unmetered runs pay (at most) one boolean
#: test per instrumented site.
NULL_REGISTRY = MetricsRegistry(enabled=False)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "empty_snapshot",
    "merge_snapshots",
]
