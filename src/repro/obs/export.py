"""Structured run reports: deterministic JSON plus a text renderer.

Every experiment entry point that collects metrics can emit a *run
report*: a JSON document with a schema tag, the semantic parameters of
the run (never execution details like worker counts) and the merged
metrics snapshot.  The JSON is stable-formatted — sorted keys, fixed
indent, trailing newline — so reports are byte-diffable across runs,
across ``--jobs`` values and across commits, and CI can compare a
fresh report against a checked-in golden file with plain ``diff``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..analysis.reporting import render_table

#: Report schema identifier; bump on incompatible layout changes.
REPORT_SCHEMA = "repro-obs-report/1"


def run_report(command: str, params: Dict[str, Any],
               metrics: Dict[str, Dict],
               timings: Optional[Dict[str, Dict[str, float]]] = None
               ) -> Dict[str, Any]:
    """Assemble a structured run report.

    ``params`` must contain only *semantic* inputs (seeds, sizes,
    repetition counts) — anything that changes the simulated behaviour
    — and never execution details (worker counts, host names), so two
    equivalent runs produce byte-identical reports.  ``timings`` is
    optional and nondeterministic; leave it out of any report that is
    diffed against a golden file.
    """
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "command": command,
        "params": dict(params),
        "metrics": metrics,
    }
    if timings is not None:
        report["timings"] = timings
    return report


def render_json(report: Dict[str, Any]) -> str:
    """Stable JSON rendering (sorted keys, indent 2, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write a report to ``path`` in the stable JSON format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_json(report))


def load_report(path: str) -> Dict[str, Any]:
    """Read a report previously written with :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def render_text(snapshot: Dict[str, Dict], title: Optional[str] = None) -> str:
    """Human-readable rendering of a metrics snapshot.

    One table per instrument kind, in the same fixed-width style as the
    benchmark output.
    """
    parts = []
    counters = snapshot.get("counters", {})
    if counters:
        parts.append(render_table(
            ["counter", "value"], sorted(counters.items()),
            title=title or "metrics"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        parts.append(render_table(["gauge", "value"], sorted(gauges.items())))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, hist in sorted(histograms.items()):
            labels = [f"<={b:g}" for b in hist["bounds"]] + [
                f">{hist['bounds'][-1]:g}"]
            cells = " ".join(f"{label}:{count}"
                             for label, count in zip(labels, hist["buckets"])
                             if count)
            rows.append((name, hist["count"], cells or "-"))
        parts.append(render_table(["histogram", "n", "buckets"], rows))
    if not parts:
        return title + ": no metrics recorded" if title else \
            "no metrics recorded"
    return "\n\n".join(parts)


def render_timings(timings: Dict[str, Dict[str, float]]) -> str:
    """Table of accumulated wall-clock phase timings."""
    rows = []
    for name, cell in sorted(timings.items()):
        count = cell["count"]
        total = cell["seconds"]
        mean_us = (1e6 * total / count) if count else 0.0
        rows.append((name, count, f"{total * 1e3:.2f} ms",
                     f"{mean_us:.1f} us"))
    if not rows:
        return "no phase timings recorded (enable with timing=True)"
    return render_table(["phase", "calls", "total", "mean"], rows,
                        title="wall-clock phase timings (nondeterministic)")


__all__ = [
    "REPORT_SCHEMA",
    "run_report",
    "render_json",
    "write_report",
    "load_report",
    "render_text",
    "render_timings",
]
