"""Protocol observability: online metrics, phase timing, run reports.

The protocol stack (engine, bus, diagnostic/membership services,
penalty/reward counters, parallel runner) updates a
:class:`~repro.obs.registry.MetricsRegistry` *while it runs*, so every
experiment can emit a deterministic, diffable run report even at
``trace_level=0`` where the trace records nothing.  See
``docs/observability.md`` for the metric catalogue and usage.
"""

from .export import (
    REPORT_SCHEMA,
    load_report,
    render_json,
    render_text,
    render_timings,
    run_report,
    write_report,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    empty_snapshot,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "empty_snapshot",
    "merge_snapshots",
    "REPORT_SCHEMA",
    "run_report",
    "render_json",
    "render_text",
    "render_timings",
    "write_report",
    "load_report",
]
