"""Representative TT platform profiles (Sec. 10 portability).

The paper's design goal is a protocol that ports across TT platforms —
FlexRay, TTP/C, SAFEbus and TT-Ethernet are named in the introduction.
The protocol itself only needs a TDMA round structure and validity
bits, so a platform is captured here by its timing profile:

=============  ==========================  ===========================
platform       typical round/cycle          notes
=============  ==========================  ===========================
TTP/C          2.5 ms (paper's prototype)  bus, membership built in
FlexRay        5 ms communication cycle    static segment slots
SAFEbus        1 ms table frame            dual self-checking buses
TT-Ethernet    10 ms cluster cycle         switched, TT traffic class
=============  ==========================  ===========================

The numbers are *representative* published magnitudes for automotive /
avionics deployments, not normative constants: their role in the
reproduction is to show the identical protocol code running across the
timing envelope of the named platforms (the portability benchmark
sweeps them).  Each profile also carries the platform's typical bus
redundancy, exercised through the replicated-channel support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cluster import Cluster
from .timebase import TimeBase


@dataclass(frozen=True)
class PlatformProfile:
    """Timing envelope of one TT platform."""

    name: str
    round_length: float
    #: Default number of sending slots for a small cluster; any N can
    #: be requested (the schedule is generated, as on real platforms).
    default_n_nodes: int
    #: Bus replication (TTP/C and SAFEbus are dual-channel).
    n_channels: int
    #: Fraction of a slot occupied by the frame.
    tx_fraction: float
    description: str

    def timebase(self, n_nodes: Optional[int] = None) -> TimeBase:
        """A :class:`TimeBase` for a cluster of ``n_nodes`` on this
        platform."""
        return TimeBase(n_nodes or self.default_n_nodes,
                        self.round_length, self.tx_fraction)

    def make_cluster(self, n_nodes: Optional[int] = None,
                     seed: int = 0) -> Cluster:
        """A simulated cluster with this platform's timing."""
        return Cluster(n_nodes or self.default_n_nodes,
                       round_length=self.round_length,
                       tx_fraction=self.tx_fraction,
                       n_channels=self.n_channels,
                       seed=seed)


TTP_C = PlatformProfile(
    name="TTP/C",
    round_length=2.5e-3,
    default_n_nodes=4,
    n_channels=2,
    tx_fraction=0.8,
    description="The paper's prototype platform: layered TTP over a "
                "redundant bus, 4 nodes, 2.5 ms TDMA rounds.",
)

FLEXRAY = PlatformProfile(
    name="FlexRay",
    round_length=5e-3,
    default_n_nodes=8,
    n_channels=2,
    tx_fraction=0.6,
    description="Automotive FlexRay: 5 ms communication cycle; the "
                "diagnostic messages ride in static-segment slots.",
)

SAFEBUS = PlatformProfile(
    name="SAFEbus",
    round_length=1e-3,
    default_n_nodes=4,
    n_channels=2,
    tx_fraction=0.7,
    description="Avionics SAFEbus (ARINC 659): table-driven 1 ms "
                "frames on dual self-checking buses.",
)

TT_ETHERNET = PlatformProfile(
    name="TT-Ethernet",
    round_length=10e-3,
    default_n_nodes=8,
    n_channels=1,
    tx_fraction=0.5,
    description="TT-Ethernet: 10 ms cluster cycle, time-triggered "
                "traffic class on switched Ethernet.",
)

#: All profiles by name, in the order the paper lists the platforms.
PLATFORMS: Dict[str, PlatformProfile] = {
    profile.name: profile
    for profile in (FLEXRAY, TTP_C, SAFEBUS, TT_ETHERNET)
}


__all__ = [
    "PlatformProfile",
    "TTP_C",
    "FLEXRAY",
    "SAFEBUS",
    "TT_ETHERNET",
    "PLATFORMS",
]
