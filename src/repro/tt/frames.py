"""Frames exchanged on the TDMA bus.

A frame is the unit of transmission in one sending slot.  The payload
is opaque to the bus and the communication controllers; for the
diagnostic protocol it carries the sender's *local syndrome* (an
``N``-tuple over ``{0, 1}``), which is why the paper's bandwidth
requirement is only ``N`` bits per diagnostic message.

The module also provides the wire encoding used to report the actual
bandwidth numbers in the benchmarks (``N`` bits per message, ``O(N^2)``
bits per round for the whole protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Frame:
    """One TDMA transmission.

    Attributes
    ----------
    sender:
        ID of the sending node (equals the slot number).
    round_index:
        Round in which the frame is sent.
    payload:
        Application payload.  For diagnostic jobs this is a
        ``tuple`` of ``N`` binary opinions (the local syndrome).
    """

    sender: int
    round_index: int
    payload: Any

    @property
    def slot(self) -> int:
        """Sending slot (identical to the sender ID in this model)."""
        return self.sender


def encode_syndrome(syndrome: Sequence[int]) -> bytes:
    """Pack a binary local syndrome into a bit string (MSB first).

    The packed size is ``ceil(N / 8)`` bytes, demonstrating the paper's
    ``N``-bit-per-message bandwidth requirement.
    """
    n = len(syndrome)
    value = 0
    for bit in syndrome:
        if bit not in (0, 1):
            raise ValueError(f"syndrome bits must be 0/1, got {bit!r}")
        value = (value << 1) | bit
    n_bytes = (n + 7) // 8
    # Left-align the bits in the byte string: shift so the first
    # syndrome bit occupies the MSB of the first byte.
    value <<= n_bytes * 8 - n
    return value.to_bytes(n_bytes, "big")


def decode_syndrome(data: bytes, n: int) -> Tuple[int, ...]:
    """Inverse of :func:`encode_syndrome`."""
    n_bytes = (n + 7) // 8
    if len(data) != n_bytes:
        raise ValueError(f"expected {n_bytes} bytes for N={n}, got {len(data)}")
    value = int.from_bytes(data, "big") >> (n_bytes * 8 - n)
    return tuple((value >> (n - 1 - i)) & 1 for i in range(n))


def syndrome_size_bits(n: int) -> int:
    """Size of one diagnostic message in bits (paper: ``N`` bits)."""
    return n


def round_bandwidth_bits(n: int) -> int:
    """Total protocol bandwidth per round in bits (paper: ``O(N^2)``)."""
    return n * syndrome_size_bits(n)


@dataclass(frozen=True)
class Delivery:
    """The outcome of one frame at one receiver.

    ``valid`` mirrors the communication controller's *validity bit*:
    it is true iff the frame passed the receiver's local error
    detection.  ``payload`` carries the received value; when a fault is
    *malicious* the payload differs from the sender's intent while
    ``valid`` remains true (locally undetectable, Sec. 4).
    """

    frame: Frame
    receiver: int
    valid: bool
    payload: Any
    channel: Optional[int] = None


__all__ = [
    "Frame",
    "Delivery",
    "encode_syndrome",
    "decode_syndrome",
    "syndrome_size_bits",
    "round_bandwidth_bits",
]
