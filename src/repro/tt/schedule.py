"""Global communication schedule and per-node job schedules.

The paper deliberately does **not** constrain the scheduling of the
diagnostic jobs: each node may execute its diagnostic job at any point
within the round (Sec. 3, Sec. 5).  Two schedule-derived parameters feed
the protocol's alignment operations:

``l_i``
    The number of sending slots of the *current* round whose frames the
    job has already seen when it reads the interface variables.  Values
    of ``dm_1 .. dm_{l_i}`` were sent in the current round ``k``, values
    of ``dm_{l_i+1} .. dm_N`` in round ``k-1`` (read alignment, Fig. 2).

``send_curr_round_i``
    True iff the job completes before the sending slot of its own node,
    so data it writes to the interface state is transmitted in the same
    round (send alignment, Alg. 1 lines 7-10).

Both are *derived here from the job's offset within the round*, exactly
as a designer would derive them from a static TT schedule; for dynamic
schedules the OS recomputes them each round (Sec. 10).

Footnote 1 of the paper is handled explicitly: a job whose offset falls
after the last transmission window of the round has observed every slot
of the round, is treated as executing in round ``k+1`` with ``l_i = 0``
(``round_shift = 1`` below), and — having run before every sending slot
of that effective round — has ``send_curr_round_i`` true.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import Dict, Optional

from .timebase import TimeBase

_EPS = 1e-12


@dataclass(frozen=True)
class ScheduleParams:
    """The schedule constants the protocol needs for one job execution.

    Attributes
    ----------
    l:
        The paper's ``l_i``: interface variables ``1..l`` hold values
        sent in the job's (effective) current round, the rest in the
        previous round.
    send_curr_round:
        The paper's ``send_curr_round_i`` predicate.
    offset:
        Physical offset of the job within the round, in seconds.
    round_shift:
        0 normally; 1 when footnote 1 applies (job after the last
        transmission window), in which case the job belongs logically to
        the *next* round.
    """

    l: int
    send_curr_round: bool
    offset: float
    round_shift: int = 0

    def effective_round(self, physical_round: int) -> int:
        """The round the job logically executes in (footnote 1)."""
        return physical_round + self.round_shift


def params_from_offset(timebase: TimeBase, node_id: int, offset: float) -> ScheduleParams:
    """Derive ``(l_i, send_curr_round_i)`` from a job offset in ``[0, T)``.

    A job at offset ``o`` has seen every slot whose *delivery instant*
    (``slot_start + tx_fraction * slot_length``) is at or before ``o``.
    It completes before its node's sending slot iff ``o`` precedes that
    slot's start.
    """
    if not 0 <= offset < timebase.round_length:
        raise ValueError(
            f"offset must be in [0, {timebase.round_length}), got {offset}")
    s = timebase.slot_length
    # Number of deliveries d_i = ((i-1) + tx_fraction) * s at or before o.
    l = int(math.floor((offset - timebase.tx_fraction * s) / s + _EPS)) + 1
    l = max(0, min(l, timebase.n_slots))
    if l == timebase.n_slots:
        # Footnote 1: the job saw the whole round; treat it as executing
        # in the next round with l = 0.  It necessarily precedes every
        # sending slot of that round.
        return ScheduleParams(l=0, send_curr_round=True, offset=offset,
                              round_shift=1)
    own_slot_start = (node_id - 1) * s
    send_curr = offset < own_slot_start - _EPS
    return ScheduleParams(l=l, send_curr_round=send_curr, offset=offset)


def offset_for_exec_after(timebase: TimeBase, exec_after: int) -> float:
    """Offset placing a job right after slot ``exec_after``'s delivery.

    ``exec_after`` is the number of completed slots of the current round
    the job observes.  For ``exec_after < N`` the resulting ``l_i``
    equals ``exec_after``; ``exec_after == N`` places the job in the gap
    after the round's last transmission window (footnote 1: effective
    ``l_i = 0`` in the next round).
    """
    n = timebase.n_slots
    if not 0 <= exec_after <= n:
        raise ValueError(f"exec_after must be in 0..{n}, got {exec_after}")
    s = timebase.slot_length
    if exec_after == n:
        # Midpoint of the gap after the last transmission window.
        return ((n - 1) + timebase.tx_fraction) * s + 0.5 * (1 - timebase.tx_fraction) * s
    if exec_after == 0:
        # Before the first delivery.
        return 0.5 * timebase.tx_fraction * s
    # Just after delivery exec_after, inside its inter-frame gap.
    return ((exec_after - 1) + timebase.tx_fraction) * s + 0.5 * (1 - timebase.tx_fraction) * s


class NodeSchedule(ABC):
    """Where, within each round, a node executes its diagnostic job."""

    @abstractmethod
    def params(self, round_index: int) -> ScheduleParams:
        """Schedule parameters for the job execution in ``round_index``."""

    @property
    @abstractmethod
    def is_static(self) -> bool:
        """True iff the offset (hence ``l_i``) is constant across rounds."""


class StaticNodeSchedule(NodeSchedule):
    """A design-time fixed job offset (the common TT case, Sec. 8).

    The constants ``l_i`` and ``send_curr_round_i`` are known at design
    time, as in the paper's prototype.
    """

    def __init__(self, timebase: TimeBase, node_id: int,
                 offset: Optional[float] = None,
                 exec_after: Optional[int] = None) -> None:
        if (offset is None) == (exec_after is None):
            raise ValueError("provide exactly one of offset / exec_after")
        if offset is None:
            offset = offset_for_exec_after(timebase, exec_after)
        self._params = params_from_offset(timebase, node_id, offset)

    def params(self, round_index: int) -> ScheduleParams:
        """The (constant) schedule parameters."""
        return self._params

    @property
    def is_static(self) -> bool:
        return True


class DynamicNodeSchedule(NodeSchedule):
    """A per-round random job offset (dynamic OS scheduling, Sec. 10).

    The OS is assumed to report the current ``l_i`` and
    ``send_curr_round_i`` to the application at run time; here that is
    modelled by recomputing the parameters from the drawn offset.  The
    draw for a given round is memoised so that the simulator and the
    protocol observe the same offset.
    """

    def __init__(self, timebase: TimeBase, node_id: int, rng: Random) -> None:
        self._timebase = timebase
        self._node_id = node_id
        self._rng = rng
        self._cache: Dict[int, ScheduleParams] = {}

    def params(self, round_index: int) -> ScheduleParams:
        """Draw (or recall) this round's schedule parameters."""
        if round_index not in self._cache:
            # Draw the offset inside the transmission window of a
            # uniformly chosen slot: this yields l uniform over
            # 0..N-1, keeps the draw away from delivery instants (so
            # event ordering is unambiguous), and never lands in the
            # end-of-round gap — a per-round draw there would make the
            # job belong to the *next* round (footnote 1) and the node
            # could then execute twice in one effective round, breaking
            # the once-per-round requirement of the protocol.
            tb = self._timebase
            slot_idx = self._rng.randrange(tb.n_slots)
            frac = (0.1 + 0.6 * self._rng.random()) * tb.tx_fraction
            offset = (slot_idx + frac) * tb.slot_length
            self._cache[round_index] = params_from_offset(
                tb, self._node_id, offset)
        return self._cache[round_index]

    @property
    def is_static(self) -> bool:
        return False


class GlobalSchedule:
    """The design-time global communication schedule (Sec. 3).

    Binds the :class:`TimeBase` with the slot-to-node assignment (the
    identity map in this model: node ``i`` owns slot ``i``) and holds
    each node's :class:`NodeSchedule`.
    """

    def __init__(self, timebase: TimeBase) -> None:
        self.timebase = timebase
        self.n_nodes = timebase.n_slots
        self._node_schedules: Dict[int, NodeSchedule] = {}

    def set_node_schedule(self, node_id: int, schedule: NodeSchedule) -> None:
        """Install a node's job schedule."""
        self._check_node(node_id)
        self._node_schedules[node_id] = schedule

    def node_schedule(self, node_id: int) -> NodeSchedule:
        """The node's job schedule (created with the default if unset)."""
        self._check_node(node_id)
        if node_id not in self._node_schedules:
            # Default: run the diagnostic job at the start of the round
            # (l_i = 0), before the first delivery.
            self._node_schedules[node_id] = StaticNodeSchedule(
                self.timebase, node_id, exec_after=0)
        return self._node_schedules[node_id]

    def sender_of_slot(self, slot: int) -> int:
        """Node owning a sending slot (identity assignment, Sec. 3)."""
        if not 1 <= slot <= self.n_nodes:
            raise ValueError(f"slot must be in 1..{self.n_nodes}, got {slot}")
        return slot

    def all_send_curr_round(self) -> bool:
        """The global predicate of Alg. 1 line 7.

        True iff every node's schedule is static and completes before
        its own sending slot, so all nodes can disseminate their
        freshly-formed syndromes in the current round (reducing the
        protocol latency by one round).  With any dynamic schedule the
        predicate cannot be evaluated at design time and is
        conservatively false (Sec. 10).
        """
        for node_id in range(1, self.n_nodes + 1):
            sched = self.node_schedule(node_id)
            if not sched.is_static:
                return False
            if not sched.params(0).send_curr_round:
                return False
        return True

    def _check_node(self, node_id: int) -> None:
        if not 1 <= node_id <= self.n_nodes:
            raise ValueError(f"node_id must be in 1..{self.n_nodes}, got {node_id}")


__all__ = [
    "ScheduleParams",
    "params_from_offset",
    "offset_for_exec_after",
    "NodeSchedule",
    "StaticNodeSchedule",
    "DynamicNodeSchedule",
    "GlobalSchedule",
]
