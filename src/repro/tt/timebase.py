"""TDMA timing arithmetic: rounds, slots and their boundaries.

The paper's system model (Sec. 3) is a periodic TDMA schedule: each of
the ``N`` nodes owns one *sending slot* per *TDMA round*.  Node IDs are
``1..N`` and are assigned following the order of the sending slots, so
slot ``i`` of every round belongs to node ``i``.

This module provides :class:`TimeBase`, the single source of truth for
converting between simulation time (seconds) and ``(round, slot)``
coordinates.  All other layers (bus, controllers, schedules, fault
scenarios) use it, so slot arithmetic is implemented exactly once.

Conventions
-----------
* Rounds are 0-based: round ``k`` spans ``[k*T, (k+1)*T)``.
* Slots are 1-based (matching the paper's node IDs): slot ``i`` of
  round ``k`` spans ``[k*T + (i-1)*T/N, k*T + i*T/N)``.
* A frame occupies only the leading ``tx_fraction`` of its slot (real
  TT buses leave inter-frame gaps).  The transmission is placed on the
  bus at the slot *start* and is latched by the receivers (interface
  variables and validity bits updated) at the *end of the transmission
  window*, i.e. "after every sending slot is completed" (Sec. 3).
  The gap after the last transmission window of a round is where a
  diagnostic job can run having observed *all* slots of the round —
  the situation covered by the paper's footnote 1 (such a job is
  treated as executing in round ``k+1`` with ``l_i = 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

#: Tolerance used when mapping continuous times to slot indices; well
#: below any slot length used in practice.
_EPS = 1e-12


@dataclass(frozen=True)
class SlotRef:
    """A global reference to one sending slot.

    ``round_index`` is 0-based; ``slot`` is 1-based and equals the
    sending node's ID.
    """

    round_index: int
    slot: int

    def global_index(self, n_slots: int) -> int:
        """0-based position of this slot in the global slot sequence."""
        return self.round_index * n_slots + (self.slot - 1)


class TimeBase:
    """Timing arithmetic for a TDMA round structure.

    Parameters
    ----------
    n_slots:
        Number of sending slots per round (= number of nodes ``N``).
    round_length:
        Duration ``T`` of one TDMA round, in seconds.  The paper's
        prototypes use ``T = 2.5 ms``.
    tx_fraction:
        Fraction of each slot occupied by the frame transmission; the
        remainder is the inter-frame gap.  Receivers latch the frame at
        ``slot_start + tx_fraction * slot_length``.
    """

    def __init__(self, n_slots: int, round_length: float,
                 tx_fraction: float = 0.8) -> None:
        if n_slots < 2:
            raise ValueError(f"need at least 2 slots per round, got {n_slots}")
        if round_length <= 0:
            raise ValueError(f"round_length must be positive, got {round_length}")
        if not 0.0 < tx_fraction < 1.0:
            raise ValueError(f"tx_fraction must be in (0, 1), got {tx_fraction}")
        self.n_slots = n_slots
        self.round_length = float(round_length)
        self.slot_length = self.round_length / n_slots
        self.tx_fraction = float(tx_fraction)

    # ------------------------------------------------------------------
    # Time -> coordinates
    # ------------------------------------------------------------------
    def round_of(self, time: float) -> int:
        """Round index containing ``time`` (boundary belongs to the later round)."""
        return int(math.floor(time / self.round_length + _EPS))

    def slot_of(self, time: float) -> SlotRef:
        """The slot containing ``time`` (boundaries belong to the later slot)."""
        gidx = int(math.floor(time / self.slot_length + _EPS))
        return SlotRef(round_index=gidx // self.n_slots,
                       slot=gidx % self.n_slots + 1)

    # ------------------------------------------------------------------
    # Coordinates -> time
    # ------------------------------------------------------------------
    def round_start(self, round_index: int) -> float:
        """Start time of round ``round_index``."""
        return round_index * self.round_length

    def slot_start(self, round_index: int, slot: int) -> float:
        """Start time of slot ``slot`` (1-based) in round ``round_index``.

        This is the instant the frame is placed on the bus.
        """
        self._check_slot(slot)
        return round_index * self.round_length + (slot - 1) * self.slot_length

    def delivery_time(self, round_index: int, slot: int) -> float:
        """Instant receivers latch the frame of the given slot."""
        self._check_slot(slot)
        return (round_index * self.round_length
                + ((slot - 1) + self.tx_fraction) * self.slot_length)

    def slot_end(self, round_index: int, slot: int) -> float:
        """End time of slot ``slot`` in round ``round_index``."""
        self._check_slot(slot)
        return round_index * self.round_length + slot * self.slot_length

    def tx_window(self, round_index: int, slot: int) -> Tuple[float, float]:
        """``(start, end)`` of the frame transmission inside the slot."""
        return (self.slot_start(round_index, slot),
                self.delivery_time(round_index, slot))

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def transmissions_between(self, t0: float, t1: float) -> Iterator[SlotRef]:
        """Slots whose *transmission window* intersects ``[t0, t1)``.

        Used by burst fault scenarios to enumerate affected frames: a
        disturbance corrupts a frame iff it overlaps the interval during
        which the frame is physically on the bus.
        """
        if t1 <= t0:
            return
        first = int(math.floor(t0 / self.slot_length + _EPS))
        last = int(math.ceil(t1 / self.slot_length - _EPS)) - 1
        for gidx in range(max(first, 0), last + 1):
            ref = SlotRef(round_index=gidx // self.n_slots,
                          slot=gidx % self.n_slots + 1)
            start, end = self.tx_window(ref.round_index, ref.slot)
            if start < t1 - _EPS and end > t0 + _EPS:
                yield ref

    def duration_in_rounds(self, seconds: float) -> int:
        """Number of complete rounds covering ``seconds`` (ceiling)."""
        return int(math.ceil(seconds / self.round_length - _EPS))

    # ------------------------------------------------------------------
    def _check_slot(self, slot: int) -> None:
        if not 1 <= slot <= self.n_slots:
            raise ValueError(f"slot must be in 1..{self.n_slots}, got {slot}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TimeBase(n_slots={self.n_slots}, "
                f"round_length={self.round_length}, "
                f"tx_fraction={self.tx_fraction})")


__all__ = ["TimeBase", "SlotRef"]
