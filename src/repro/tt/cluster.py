"""Cluster assembly and round-by-round simulation driving.

:class:`Cluster` wires together the engine, the TDMA time base, the
bus (with fault injection), one node per sending slot, and the trace.
It reproduces the paper's prototype setup programmatically: a set of
nodes (4 in the paper, any ``N >= 2`` here) interconnected via a
(possibly replicated) TT network, each running jobs on top of a TT
operating system, plus a disturbance capability.

The driver schedules, for each round ``k``:

* one transmission event per slot at the slot start (the sender's
  controller latches its out-buffer into a frame, the bus applies
  fault injection and schedules delivery at the end of the
  transmission window);
* one job-execution event per node at the node's schedule offset;
* a control event at the start of round ``k+1`` that lazily schedules
  the next round, so arbitrarily long simulations need O(N) queued
  events at any time.
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable, Dict, Optional

from ..faults.injector import InjectionLayer, Scenario
from ..sim.engine import Engine
from ..sim.events import EventPriority
from ..sim.rng import RandomStreams
from ..sim.trace import Trace
from .bus import Bus
from .controller import CommunicationController
from .node import Job, Node
from .schedule import (
    DynamicNodeSchedule,
    GlobalSchedule,
    NodeSchedule,
    StaticNodeSchedule,
)
from .timebase import TimeBase

#: The paper's prototype TDMA round length (automotive and aerospace).
PAPER_ROUND_LENGTH = 2.5e-3


class Cluster:
    """A simulated time-triggered cluster.

    Parameters
    ----------
    n_nodes:
        Number of nodes / sending slots per round.
    round_length:
        TDMA round duration in seconds (paper: 2.5 ms).
    tx_fraction:
        Fraction of a slot occupied by the frame on the bus.
    seed:
        Master seed for all stochastic components.
    n_channels:
        Bus replication degree (Sec. 3: "possibly replicated").
    trace_level:
        Recording level of the cluster-owned :class:`Trace` (ignored
        when an explicit ``trace`` is supplied).  Level 0 drops
        per-slot records without allocating them.
    fast_path:
        Enable the bus's batched delivery for injection-quiescent slots
        (bit-identical results; disable only to exercise the slow path).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` shared by the
        engine, the bus and (when the caller wires them) the diagnostic
        services.  ``None`` keeps the whole stack unmetered.
    """

    def __init__(self, n_nodes: int, round_length: float = PAPER_ROUND_LENGTH,
                 tx_fraction: float = 0.8, seed: int = 0,
                 n_channels: int = 1, trace: Optional[Trace] = None,
                 trace_level: int = 2, fast_path: bool = True,
                 metrics: Optional[Any] = None) -> None:
        self.metrics = metrics
        self.engine = Engine(metrics=metrics)
        self.timebase = TimeBase(n_nodes, round_length, tx_fraction)
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else Trace(level=trace_level)
        self.injection = InjectionLayer()
        self.bus = Bus(self.engine, self.timebase, self.injection,
                       self.trace, n_channels=n_channels,
                       fast_path=fast_path, metrics=metrics)
        self.schedule = GlobalSchedule(self.timebase)

        self.nodes: Dict[int, Node] = {}
        for node_id in range(1, n_nodes + 1):
            controller = CommunicationController(node_id, n_nodes, self.trace)
            node = Node(node_id, controller, self.schedule.node_schedule(node_id))
            self.nodes[node_id] = node
            self.bus.attach(node_id, controller)

        self._rounds_driven = 0
        self._started = False
        # Margin keeping round-boundary events of round k out of a
        # ``run_rounds`` horizon ending at round k's start: all genuine
        # events of round k-1 end strictly earlier than this margin
        # before k * T (see TimeBase transmission windows).
        self._horizon_margin = 0.05 * (1 - tx_fraction) * self.timebase.slot_length

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.timebase.n_slots

    def node(self, node_id: int) -> Node:
        """The host node owning sending slot ``node_id``."""
        return self.nodes[node_id]

    def install_job(self, node_id: int, job: Job) -> None:
        """Install a per-round job on a node (e.g. a diagnostic job)."""
        self._check_not_started("install jobs")
        self.nodes[node_id].add_job(job)

    def set_static_schedule(self, node_id: int, exec_after: Optional[int] = None,
                            offset: Optional[float] = None) -> None:
        """Give a node a static schedule (design-time ``l_i``)."""
        self._set_schedule(node_id, StaticNodeSchedule(
            self.timebase, node_id, offset=offset, exec_after=exec_after))

    def set_dynamic_schedule(self, node_id: int,
                             rng: Optional[Random] = None) -> None:
        """Give a node a dynamic (per-round random) schedule (Sec. 10)."""
        if rng is None:
            rng = self.streams.stream(f"dynamic-schedule-{node_id}")
        self._set_schedule(node_id, DynamicNodeSchedule(self.timebase, node_id, rng))

    def _set_schedule(self, node_id: int, schedule: NodeSchedule) -> None:
        self._check_not_started("change schedules")
        self.schedule.set_node_schedule(node_id, schedule)
        self.nodes[node_id].schedule = schedule

    def add_scenario(self, scenario: Scenario) -> None:
        """Register a fault scenario (may be added mid-simulation).

        Scenarios expressed in slot coordinates (e.g. an unbound
        :class:`~repro.faults.scenarios.SlotBurst`) resolve their
        absolute times against this cluster's time base here.
        """
        bind = getattr(scenario, "bind", None)
        if callable(bind):
            bind(self.timebase)
        self.injection.add(scenario)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_rounds(self, n_rounds: int) -> None:
        """Advance the simulation by ``n_rounds`` complete rounds."""
        if n_rounds < 0:
            raise ValueError(f"n_rounds must be >= 0, got {n_rounds}")
        self._ensure_started()
        target = self._rounds_driven + n_rounds
        horizon = self.timebase.round_start(target) - self._horizon_margin
        self.engine.run_batch(until=horizon)
        self._rounds_driven = target
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("cluster.rounds_driven").inc(n_rounds)

    def run_until(self, time: float) -> None:
        """Advance the simulation to absolute ``time`` (seconds)."""
        self._ensure_started()
        self.engine.run_batch(until=time)
        self._rounds_driven = max(self._rounds_driven,
                                  self.timebase.round_of(self.engine.now))

    @property
    def rounds_completed(self) -> int:
        """Number of rounds fully driven by :meth:`run_rounds`."""
        return self._rounds_driven

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    # Internal driver
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if not self._started:
            self._started = True
            self.engine.schedule(0.0, EventPriority.INJECTOR,
                                 lambda: self._schedule_round(0),
                                 description="bootstrap round 0")

    def _check_not_started(self, what: str) -> None:
        if self._started:
            raise RuntimeError(f"cannot {what} after the simulation started")

    def _schedule_round(self, round_index: int) -> None:
        tb = self.timebase
        # Transmissions: one per slot, at the slot start.
        for slot in range(1, self.n_nodes + 1):
            self.engine.schedule(
                tb.slot_start(round_index, slot), EventPriority.SLOT_TRANSMIT,
                self._make_transmit(round_index, slot),
                description=f"tx r{round_index} s{slot}")
        # Job executions: one batch per node, at the node's offset.
        for node_id, node in self.nodes.items():
            params = node.schedule.params(round_index)
            self.engine.schedule(
                tb.round_start(round_index) + params.offset, EventPriority.JOB,
                self._make_job_exec(node, round_index),
                description=f"jobs n{node_id} r{round_index}")
        # Lazily schedule the next round at its start.
        self.engine.schedule(
            tb.round_start(round_index + 1), EventPriority.INJECTOR,
            lambda: self._schedule_round(round_index + 1),
            description=f"schedule round {round_index + 1}")

    def _make_transmit(self, round_index: int, slot: int) -> Callable[[], None]:
        sender = self.schedule.sender_of_slot(slot)
        controller = self.nodes[sender].controller
        bus = self.bus

        def transmit() -> None:
            if controller.tx_enabled:
                # transmit_latched only materialises a Frame if the
                # transmission leaves the quiescent fast path.
                bus.transmit_latched(round_index, slot, sender,
                                     controller.build_payload())
            else:
                bus.transmit(round_index, slot, None)

        return transmit

    def _make_job_exec(self, node: Node, round_index: int) -> Callable[[], None]:
        def execute() -> None:
            node.execute_jobs(round_index, self.engine.now)

        return execute


__all__ = ["Cluster", "PAPER_ROUND_LENGTH"]
