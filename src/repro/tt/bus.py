"""Shared (optionally replicated) broadcast bus with TDMA access.

The bus connects all communication controllers.  At the start of a
sending slot the owning node's controller hands the bus a frame (or
``None`` if the node does not transmit); the bus consults the
fault-injection layer for the per-receiver outcome on each channel,
composes replicated channels, and schedules the delivery at the end of
the transmission window.

Key modelling points (Sec. 3/4 of the paper):

* The sender is a receiver of its own frame — its self-reception result
  is the *local collision detector* outcome ("checks if messages sent
  by the node can actually be read from the bus").
* Correct nodes are identified by sending time; there is no message
  forging: a frame observed in slot ``i`` is attributed to node ``i``.
* On a replicated bus a receiver accepts the first channel (in index
  order) whose frame passes its local error detection.  A malicious
  frame is by definition locally undetectable, so a malicious channel
  earlier in the order wins over a correct later channel — replication
  helps against benign channel faults, not against malicious ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..faults.injector import InjectionLayer, TransmissionContext
from ..faults.model import ReceptionOutcome, classify_broadcast
from ..sim.engine import Engine
from ..sim.events import EventPriority
from ..sim.trace import Trace
from .frames import Frame
from .timebase import TimeBase


class Bus:
    """The TDMA broadcast medium."""

    def __init__(self, engine: Engine, timebase: TimeBase,
                 injection: InjectionLayer, trace: Trace,
                 n_channels: int = 1, fast_path: bool = True,
                 metrics: Optional[Any] = None) -> None:
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        self.engine = engine
        self.timebase = timebase
        self.injection = injection
        self.trace = trace
        self.n_channels = n_channels
        #: When true, slots the injection layer declares quiescent skip
        #: the per-channel/per-receiver outcome machinery and deliver in
        #: one batched event.  Bit-identical to the slow path.
        self.fast_path = fast_path
        self._receivers: Dict[int, Any] = {}
        self._node_ids: Tuple[int, ...] = ()
        self._ordered: Tuple[Tuple[int, Any], ...] = ()
        self._all_valid: Dict[int, int] = {}
        # Online observability (repro.obs): instruments resolved once,
        # per-slot updates guarded by one cached boolean so disabled
        # metrics cost a single truth test on the hot path.
        self._metrics = metrics
        self._m_on = metrics is not None and metrics.enabled
        self._timing_on = self._m_on and metrics.timing
        if self._m_on:
            self._m_slots_total = metrics.counter("bus.slots_total")
            self._m_slots_fast = metrics.counter("bus.slots_fast_path")
            self._m_slots_slow = metrics.counter("bus.slots_slow_path")
            self._m_slots_silent = metrics.counter("bus.slots_silent")
        if self._timing_on:
            # Mirror the Trace fast-off idiom in reverse: only a timed
            # bus pays the wrapper, via instance-attribute rebinding.
            self.transmit = self._transmit_timed  # type: ignore[assignment]
            self.transmit_latched = (  # type: ignore[assignment]
                self._transmit_latched_timed)

    def attach(self, node_id: int, controller: Any) -> None:
        """Register a controller to receive every slot's delivery."""
        self._receivers[node_id] = controller
        # Receiver-order caches, rebuilt on (rare) attach instead of on
        # every transmit.
        self._node_ids = tuple(sorted(self._receivers))
        self._ordered = tuple((i, self._receivers[i]) for i in self._node_ids)
        self._all_valid = {i: 1 for i in self._node_ids}

    @property
    def node_ids(self) -> Tuple[int, ...]:
        """Attached node IDs in ascending order (cached at attach time)."""
        return self._node_ids

    # ------------------------------------------------------------------
    def transmit(self, round_index: int, slot: int, frame: Optional[Frame]) -> None:
        """Put ``frame`` on the bus in the given slot.

        Called by the cluster driver at the slot start.  ``frame is
        None`` models a silent sender (crashed process or transmission
        disabled): every receiver observes a missing frame, i.e. a
        locally detectable fault.

        When the fast path is enabled and the injection layer reports
        the slot quiescent, the transmission takes
        :meth:`transmit_quiescent` instead — same trace record, same
        deliveries, one batched delivery event.
        """
        if (frame is not None and self.fast_path
                and self.injection.is_quiescent(round_index, slot,
                                                self.timebase)):
            self.transmit_quiescent(round_index, slot, frame.sender,
                                    frame.payload)
            return
        self._transmit_slow(round_index, slot, frame)

    def transmit_latched(self, round_index: int, slot: int, sender: int,
                         payload: Any) -> None:
        """Transmit a just-latched payload, skipping Frame allocation.

        Entry point used by the cluster driver: the quiescent fast path
        only needs the sender ID and the payload, so no :class:`Frame`
        is materialised for it; a non-quiescent transmission builds the
        Frame and takes the exhaustive slow path.
        """
        if self.fast_path and self.injection.is_quiescent(
                round_index, slot, self.timebase):
            self.transmit_quiescent(round_index, slot, sender, payload)
            return
        self._transmit_slow(round_index, slot,
                            Frame(sender=sender, round_index=round_index,
                                  payload=payload))

    def _transmit_timed(self, round_index: int, slot: int,
                        frame: Optional[Frame]) -> None:
        with self._metrics.timer("bus.transmit"):
            Bus.transmit(self, round_index, slot, frame)

    def _transmit_latched_timed(self, round_index: int, slot: int,
                                sender: int, payload: Any) -> None:
        with self._metrics.timer("bus.transmit"):
            Bus.transmit_latched(self, round_index, slot, sender, payload)

    def _transmit_slow(self, round_index: int, slot: int,
                       frame: Optional[Frame]) -> None:
        if self._m_on:
            self._m_slots_total.inc()
            self._m_slots_slow.inc()
            if frame is None:
                self._m_slots_silent.inc()
        receivers = self.node_ids
        per_receiver: Dict[int, Tuple[bool, Any]] = {}
        causes: List[str] = []

        if frame is None:
            for r in receivers:
                per_receiver[r] = (False, None)
            causes.append("silent-sender")
            outcome_map = {r: ReceptionOutcome.DETECTABLE for r in receivers}
        else:
            # Injection outcome per channel, then channel composition:
            # a receiver takes the first channel whose frame passes its
            # local error detection.
            channel_results = []
            for channel in range(self.n_channels):
                ctx = TransmissionContext(
                    time=self.timebase.slot_start(round_index, slot),
                    round_index=round_index,
                    slot=slot,
                    sender=frame.sender,
                    receivers=receivers,
                    channel=channel,
                    timebase=self.timebase,
                )
                injected = self.injection.apply(ctx)
                channel_results.append(injected)
                causes.extend(injected.causes)

            outcome_map = {}
            for r in receivers:
                accepted: Optional[Tuple[bool, Any]] = None
                composed = ReceptionOutcome.DETECTABLE
                for injected in channel_results:
                    outcome = injected.outcomes[r]
                    if outcome is ReceptionOutcome.OK:
                        accepted = (True, frame.payload)
                        composed = ReceptionOutcome.OK
                        break
                    if outcome is ReceptionOutcome.MALICIOUS:
                        accepted = (True, injected.malicious_payload)
                        composed = ReceptionOutcome.MALICIOUS
                        break
                per_receiver[r] = accepted if accepted is not None else (False, None)
                outcome_map[r] = composed

        sender_id = frame.sender if frame is not None else slot
        # Intern the common all-valid validity map: Trace.record keeps
        # nested dicts by reference, so slow-path slots whose injections
        # all missed share one dict with the fast path instead of
        # retaining a fresh N-entry dict per trace record.
        validity = {r: int(v) for r, (v, _p) in per_receiver.items()}
        if validity == self._all_valid:
            validity = self._all_valid
        self.trace.record(
            self.engine.now, "tx", node=sender_id,
            round_index=round_index, slot=slot,
            sent=frame is not None,
            fault_class=classify_broadcast(outcome_map).value,
            validity=validity,
            causes=tuple(dict.fromkeys(causes)),
        )

        delivery_at = self.timebase.delivery_time(round_index, slot)
        self.engine.schedule(
            delivery_at, EventPriority.SLOT_DELIVER,
            lambda: self._deliver(round_index, slot, sender_id, per_receiver),
            description=f"deliver r{round_index} s{slot}",
        )

    def transmit_quiescent(self, round_index: int, slot: int,
                           sender: int, payload: Any) -> None:
        """Fast path for a slot with no active injection.

        The outcome is known without consulting the injection layer:
        every receiver accepts the payload on the first channel.  The
        ``tx`` trace record carries exactly the fields the slow path
        would produce for an all-OK broadcast, and the single batched
        delivery event calls the controllers in the same order at the
        same instant as the slow path's delivery loop.
        """
        if self._m_on:
            self._m_slots_total.inc()
            self._m_slots_fast.inc()
        trace = self.trace
        if trace.level > 0:
            trace.record(
                self.engine.now, "tx", node=sender,
                round_index=round_index, slot=slot,
                sent=True, fault_class="none",
                validity=self._all_valid, causes=(),
            )
        self.engine.schedule(
            self.timebase.delivery_time(round_index, slot),
            EventPriority.SLOT_DELIVER,
            lambda: self._deliver_batch(round_index, slot, sender, payload),
        )

    def _deliver_batch(self, round_index: int, slot: int, sender: int,
                       payload: Any) -> None:
        now = self.engine.now
        for _node_id, controller in self._ordered:
            controller.deliver(sender=sender, round_index=round_index,
                               slot=slot, valid=True, payload=payload,
                               time=now)

    def _deliver(self, round_index: int, slot: int, sender: int,
                 per_receiver: Dict[int, Tuple[bool, Any]]) -> None:
        for node_id, controller in self._ordered:
            valid, payload = per_receiver[node_id]
            controller.deliver(
                sender=sender, round_index=round_index, slot=slot,
                valid=valid, payload=payload, time=self.engine.now)


__all__ = ["Bus"]
