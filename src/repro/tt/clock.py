"""Local clock model and Slightly-Off-Specification (SOS) faults.

Sec. 4 of the paper names SOS faults [Ademaj et al., DSN 2003] as a
canonical source of *asymmetric* faults: "when the clock of a node is
close to the allowed offset ... the messages it sends are seen as
timely only by a subset of the receivers".

This module models just enough clock physics to generate such
asymmetries from first principles instead of hand-picking the affected
receiver set:

* every node has a local clock with a constant initial offset and a
  linear drift rate relative to global time;
* a receiver accepts a frame as *timely* iff the apparent timing error
  — the difference between the sender's and the receiver's clock at
  transmission time — is within the receiver's acceptance window.

When a sender's clock deviation sits near the acceptance-window edge,
receivers whose own offsets lean the other way reject the frame while
the rest accept it: an asymmetric fault, exactly the SOS mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping

from ..faults.injector import Scenario, TransmissionContext
from ..faults.model import FaultDirective


@dataclass(frozen=True)
class ClockModel:
    """A node-local clock: ``local(t) = t + offset + drift * t``."""

    offset: float = 0.0
    drift: float = 0.0

    def deviation(self, t: float) -> float:
        """Deviation from global time at global time ``t``."""
        return self.offset + self.drift * t


class SOSClockScenario(Scenario):
    """Derives per-receiver timeliness from the cluster's clock state.

    Parameters
    ----------
    clocks:
        Mapping node ID -> :class:`ClockModel`.  Nodes absent from the
        mapping are assumed perfectly synchronised.
    acceptance_window:
        Half-width of the receive window: receiver ``r`` detects the
        frame of sender ``s`` as untimely iff
        ``|deviation_s(t) - deviation_r(t)| > acceptance_window``.
    """

    def __init__(self, clocks: Mapping[int, ClockModel],
                 acceptance_window: float) -> None:
        if acceptance_window <= 0:
            raise ValueError("acceptance_window must be positive")
        self.clocks: Dict[int, ClockModel] = dict(clocks)
        self.acceptance_window = acceptance_window

    def _deviation(self, node_id: int, t: float) -> float:
        clock = self.clocks.get(node_id)
        return clock.deviation(t) if clock is not None else 0.0

    def rejecting_receivers(self, sender: int, receivers, t: float):
        """Receivers that locally detect the sender's frame as untimely."""
        dev_s = self._deviation(sender, t)
        rejecting = []
        for r in receivers:
            if r == sender:
                # The sender judges its own frame by its own clock:
                # zero apparent error, never rejected here.
                continue
            if abs(dev_s - self._deviation(r, t)) > self.acceptance_window:
                rejecting.append(r)
        return rejecting

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        rejecting = self.rejecting_receivers(ctx.sender, ctx.receivers, ctx.time)
        if rejecting:
            yield FaultDirective.asymmetric(rejecting, cause="sos")


__all__ = ["ClockModel", "SOSClockScenario"]
