"""Host node: the computer running jobs on top of a TT operating system.

A node bundles a communication controller, a node schedule and a job
table.  The paper's add-on protocol runs as one *diagnostic job* per
node, executed once per round at an arbitrary (unconstrained) point of
the node's internal schedule; application jobs can coexist in the same
table.

The :class:`JobContext` passed to a job at each execution exposes
exactly the observables the paper allows an application-level module:
the interface variables with their validity bits (via the controller),
the OS-provided schedule parameters ``l_i`` / ``send_curr_round_i``
(Sec. 10: "in case of dynamic scheduling we require the OS to provide
this information to the application at run-time"), and the current
round number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

from ..faults.model import NodeGroundTruth
from .controller import CommunicationController
from .schedule import NodeSchedule, ScheduleParams


@dataclass
class JobContext:
    """Execution context handed to a job once per round.

    Attributes
    ----------
    node:
        The hosting :class:`Node`.
    round_index:
        The *effective* round of this execution (footnote 1 of the
        paper applied: a job running after the last transmission window
        of physical round ``k`` gets ``round_index = k + 1``).
    physical_round:
        The round whose window contains the execution instant.
    params:
        The OS-reported schedule parameters for this execution.
    time:
        Simulation time of the execution.
    """

    node: "Node"
    round_index: int
    physical_round: int
    params: ScheduleParams
    time: float

    @property
    def controller(self) -> CommunicationController:
        return self.node.controller


class Job(Protocol):
    """Anything executable once per round on a node."""

    def execute(self, ctx: JobContext) -> None:
        """Run the job for the round described by ``ctx``."""
        ...  # pragma: no cover - protocol definition


class Node:
    """One host computer attached to the TDMA bus."""

    def __init__(self, node_id: int, controller: CommunicationController,
                 schedule: NodeSchedule) -> None:
        self.node_id = node_id
        self.controller = controller
        self.schedule = schedule
        self.jobs: List[Job] = []
        self.ground_truth = NodeGroundTruth(node_id=node_id)

    def add_job(self, job: Job) -> None:
        """Install a job; jobs run in installation order each round."""
        self.jobs.append(job)

    def execute_jobs(self, physical_round: int, time: float) -> None:
        """Run all jobs for the given round (called by the cluster driver)."""
        params = self.schedule.params(physical_round)
        ctx = JobContext(
            node=self,
            round_index=params.effective_round(physical_round),
            physical_round=physical_round,
            params=params,
            time=time,
        )
        for job in self.jobs:
            job.execute(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id})"


__all__ = ["Node", "Job", "JobContext"]
