"""Time-triggered system substrate (paper Sec. 3).

A synchronous TDMA cluster: a shared (optionally replicated) broadcast
bus, communication controllers exposing interface variables with
validity bits and a local collision detector, host nodes with
unconstrained job schedules, and local clocks (for SOS fault
generation).  The add-on diagnostic protocol of :mod:`repro.core` runs
purely on top of the observables this package provides.
"""

from .bus import Bus
from .clock import ClockModel, SOSClockScenario
from .cluster import Cluster, PAPER_ROUND_LENGTH
from .controller import CommunicationController, SenderStatus
from .frames import (
    Delivery,
    Frame,
    decode_syndrome,
    encode_syndrome,
    round_bandwidth_bits,
    syndrome_size_bits,
)
from .node import Job, JobContext, Node
from .platforms import FLEXRAY, PLATFORMS, SAFEBUS, TTP_C, TT_ETHERNET, PlatformProfile
from .schedule import (
    DynamicNodeSchedule,
    GlobalSchedule,
    NodeSchedule,
    ScheduleParams,
    StaticNodeSchedule,
    offset_for_exec_after,
    params_from_offset,
)
from .timebase import SlotRef, TimeBase

__all__ = [
    "Bus",
    "ClockModel",
    "SOSClockScenario",
    "Cluster",
    "PAPER_ROUND_LENGTH",
    "CommunicationController",
    "SenderStatus",
    "Delivery",
    "Frame",
    "decode_syndrome",
    "encode_syndrome",
    "round_bandwidth_bits",
    "syndrome_size_bits",
    "Job",
    "JobContext",
    "Node",
    "FLEXRAY",
    "PLATFORMS",
    "SAFEBUS",
    "TTP_C",
    "TT_ETHERNET",
    "PlatformProfile",
    "DynamicNodeSchedule",
    "GlobalSchedule",
    "NodeSchedule",
    "ScheduleParams",
    "StaticNodeSchedule",
    "offset_for_exec_after",
    "params_from_offset",
    "SlotRef",
    "TimeBase",
]
