"""Communication controller: the node's interface to the TDMA bus.

Sec. 3 of the paper abstracts inter-node communication as *interface
variables* ``<v_1, ..., v_N>`` that the controllers update automatically
by sending/receiving messages according to the global communication
schedule.  This module implements that abstraction:

* one interface variable (and its *validity bit*) per sender node;
* the validity bit of ``v_i`` at receiver ``j`` is 0 iff ``j`` could not
  receive the last message from ``i`` — stale values are kept but
  flagged invalid, exactly as on the paper's prototype (the
  ``tt_Receiver_Status`` API);
* a *local collision detection* mechanism: the controller observes its
  own frame on the bus and records per-round whether it was readable;
* an *activity mask*: traffic from nodes isolated by the diagnostic
  protocol "must be ignored by the communication controllers of all
  other nodes" — masked senders are treated as permanently invalid.
  A softer ``observe`` mode keeps diagnosing a node without readmitting
  it, used by the reintegration extension (Sec. 9, last paragraph).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from ..sim.trace import Trace

#: Channel name used by the diagnostic middleware.  Frames multiplex
#: named channels so the add-on protocol shares the node's sending slot
#: with application data "without interference with other
#: functionalities" (Sec. 1).
DIAG_CHANNEL = "diag"


class SenderStatus(enum.Enum):
    """How this controller treats traffic from one sender."""

    #: Normal operation: deliveries update interface state.
    ACTIVE = "active"
    #: Isolated but observed: validity bits still reflect the bus (the
    #: diagnostic layer keeps assessing the node) while the application
    #: must treat the node as down.
    OBSERVED = "observed"
    #: Isolated and ignored: validity forced to 0.
    IGNORED = "ignored"


class CommunicationController:
    """Per-node controller holding interface variables and validity bits."""

    def __init__(self, node_id: int, n_nodes: int, trace: Trace) -> None:
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.trace = trace
        # 1-based interface state; index 0 unused.
        self._values: List[Any] = [None] * (n_nodes + 1)
        self._validity: List[int] = [0] * (n_nodes + 1)
        self._rounds_sent: List[Optional[int]] = [None] * (n_nodes + 1)
        self._status: List[SenderStatus] = [SenderStatus.ACTIVE] * (n_nodes + 1)
        self._collision: Dict[int, bool] = {}
        self._history: Dict[int, List[Any]] = {
            i: [] for i in range(1, n_nodes + 1)}
        self._out_buffers: Dict[str, Any] = {}
        self.tx_enabled: bool = True
        self._delivery_listeners: List[Any] = []

    # ------------------------------------------------------------------
    # Sending side
    # ------------------------------------------------------------------
    def write_interface(self, payload: Any,
                        channel: str = DIAG_CHANNEL) -> None:
        """Stage ``payload`` on a named channel of the node's next frame.

        Mirrors the paper's ``write_iface``: whether the data goes out
        in the current or the next round depends purely on whether the
        write happens before the node's sending slot (send alignment is
        the *protocol's* job; the controller just latches at slot
        start).  Channels multiplex the frame between the diagnostic
        middleware (channel ``"diag"``) and application jobs, so the
        add-on protocol never interferes with application traffic.
        """
        self._out_buffers[channel] = payload

    def build_payload(self) -> Any:
        """Payload for the transmission now starting (latched at slot start)."""
        return dict(self._out_buffers) if self._out_buffers else None

    @staticmethod
    def channel_of(payload: Any, channel: str) -> Any:
        """Extract one channel from a received frame payload.

        Well-formed frames carry a dict of channels; anything else
        (e.g. a payload forged by a malicious fault) is handed to every
        channel as-is — the consuming layer's input validation decides
        what to do with it.
        """
        if isinstance(payload, dict):
            return payload.get(channel)
        return payload

    # ------------------------------------------------------------------
    # Receiving side
    # ------------------------------------------------------------------
    def deliver(self, sender: int, round_index: int, slot: int,
                valid: bool, payload: Any, time: float = 0.0) -> None:
        """Latch one slot's frame (called by the bus at delivery time)."""
        if sender == self.node_id:
            # Local collision detection: could our own frame be read
            # back from the bus?
            self._collision[round_index] = valid
        if self._status[sender] is SenderStatus.IGNORED:
            valid = False
        self._validity[sender] = 1 if valid else 0
        if valid:
            self._values[sender] = payload
            self._rounds_sent[sender] = round_index
        # Double-buffered receive history (last two rounds per sender).
        # Real TT controllers expose equivalent status information (the
        # CNI reports the update instant of each interface variable);
        # the protocol only needs it under *dynamic* node scheduling,
        # where the application-level read-alignment buffer alone
        # cannot always reconstruct the previous round (the job's read
        # point may skip over a delivery when l_i grows between rounds).
        history = self._history[sender]
        history.append((round_index, 1 if valid else 0,
                        payload if valid else None))
        if len(history) > 4:
            history.pop(0)
        for listener in self._delivery_listeners:
            listener(sender=sender, round_index=round_index, slot=slot,
                     valid=valid, payload=payload if valid else None,
                     time=time)

    def add_delivery_listener(self, listener: Any) -> None:
        """Register a callback invoked after every slot delivery.

        Used by system-level services (the Sec. 10 low-latency variant)
        that react per slot rather than per round.  The callback
        signature is ``(sender, round_index, slot, valid, payload)``.
        """
        self._delivery_listeners.append(listener)

    # ------------------------------------------------------------------
    # Application-visible reads (the add-on protocol's only inputs)
    # ------------------------------------------------------------------
    def read_interface(self, channel: Optional[str] = None) -> List[Any]:
        """Snapshot of the interface variables, 1-based (index 0 = None).

        With a ``channel``, each sender's entry is that channel's value
        from the sender's last valid frame.
        """
        if channel is None:
            return list(self._values)
        return [None if v is None else self.channel_of(v, channel)
                for v in self._values]

    def read_validity(self) -> List[int]:
        """Snapshot of the validity bits, 1-based (index 0 = 0)."""
        return list(self._validity)

    def read_delivery(self, sender: int, round_index: int):
        """The buffered delivery of ``sender``'s slot in ``round_index``.

        Returns ``(validity_bit, payload)`` (payload ``None`` when
        invalid) or ``None`` when that round's delivery is no longer
        buffered.  The controller keeps the last four deliveries per
        sender, so at any point within round ``k`` the deliveries of
        rounds ``k-1`` and ``k-2`` are guaranteed to be available — the
        property the dynamic-scheduling variant of the protocol relies
        on for its read alignment and tag-matched aggregation.
        """
        for rec_round, valid, payload in self._history[sender]:
            if rec_round == round_index:
                return (valid, payload)
        return None

    def collision_ok(self, round_index: int) -> bool:
        """Local collision detector result for the node's slot in a round.

        Returns False when the node did not (or could not) put a
        readable frame on the bus in that round.
        """
        return self._collision.get(round_index, False)

    # ------------------------------------------------------------------
    # Activity management (driven by the diagnostic protocol output)
    # ------------------------------------------------------------------
    def set_sender_status(self, sender: int, status: SenderStatus) -> None:
        """Set how traffic from ``sender`` is treated (activity mask)."""
        if not 1 <= sender <= self.n_nodes:
            raise ValueError(f"sender must be in 1..{self.n_nodes}, got {sender}")
        self._status[sender] = status

    def sender_status(self, sender: int) -> SenderStatus:
        """Current activity-mask status of one sender."""
        return self._status[sender]

    def disable_transmission(self) -> None:
        """Stop putting frames on the bus (self-isolation / power-off)."""
        self.tx_enabled = False

    def enable_transmission(self) -> None:
        """Resume putting frames on the bus (after reintegration)."""
        self.tx_enabled = True


__all__ = ["CommunicationController", "SenderStatus"]
