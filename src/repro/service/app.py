"""The ASGI application: routes, content negotiation, SSE streaming.

Framework-free by design — the app is a plain ASGI 3 callable built on
the stdlib, so the service runs anywhere the package imports.  The
same callable also runs unmodified under uvicorn when the ``service``
extra is installed (:mod:`repro.service.asgi`).

Routes::

    GET  /healthz                 liveness + job-state counts
    GET  /v1/store/stats          ResultStore footprint
    GET  /v1/metrics              service / store / engine snapshots
    POST /v1/jobs                 submit (RunSpec or campaign JSON)
    GET  /v1/jobs                 list jobs in submission order
    GET  /v1/jobs/{id}            job detail
    GET  /v1/jobs/{id}/events     SSE progress stream (replay + tail)
    GET  /v1/jobs/{id}/result     the campaign result document;
                                  ``?format=json|ascii|md|tex|csv|html``

``/result?format=json`` serves **byte-identical** output to
``repro-diag campaign run --out`` (same :func:`~repro.obs.export.
render_json` over the same document); the table formats reuse the
``results render`` pipeline, so the service can never disagree with
the CLI about a number.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs

from .. import __version__
from ..obs.export import render_json
from ..results.render import render_tables
from ..results.source import parse_document, tables_for_document
from .events import JobEventLog, sse_frame
from .jobs import Job, JobManager, QueueFullError, ServiceClosedError
from .serialization import BadRequestError, parse_job_request

#: ``?format=`` values → renderer formats (the CLI's alias table).
_FORMAT_ALIASES = {"md": "markdown", "tex": "latex"}
_RESULT_FORMATS = ("json", "ascii", "markdown", "latex", "csv", "html")
_CONTENT_TYPES = {
    "json": "application/json",
    "ascii": "text/plain; charset=utf-8",
    "markdown": "text/markdown; charset=utf-8",
    "latex": "text/plain; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
    "html": "text/html; charset=utf-8",
}
#: Request bodies past this are rejected outright (413).
MAX_BODY_BYTES = 8 * 1024 * 1024


def create_app(manager: JobManager) -> Callable:
    """Build the ASGI callable serving ``manager``."""
    return _ServiceApp(manager)


class _ServiceApp:
    """ASGI 3 application object (``await app(scope, receive, send)``)."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope {scope['type']!r}")
        try:
            await self._dispatch(scope, receive, send)
        except ClientDisconnect:
            pass

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self.manager.shutdown)
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- routing -------------------------------------------------------
    async def _dispatch(self, scope, receive, send) -> None:
        method = scope["method"]
        path = scope["path"].rstrip("/") or "/"
        query = {k: v[-1] for k, v in
                 parse_qs(scope.get("query_string", b"")
                          .decode("latin-1")).items()}
        if path == "/healthz" and method == "GET":
            await self._healthz(send)
        elif path == "/v1/store/stats" and method == "GET":
            await self._store_stats(send)
        elif path == "/v1/metrics" and method == "GET":
            await _send_json(send, 200, self.manager.metrics_snapshot())
        elif path == "/v1/jobs" and method == "POST":
            await self._submit(receive, send)
        elif path == "/v1/jobs" and method == "GET":
            await _send_json(send, 200, {
                "jobs": [job.summary() for job in self.manager.jobs()]})
        elif path.startswith("/v1/jobs/"):
            await self._job_routes(scope, receive, send, method,
                                   path, query)
        else:
            await _send_error(send, 404, f"no such route: {path}")

    async def _job_routes(self, scope, receive, send, method: str,
                          path: str, query: Dict[str, str]) -> None:
        parts = path.split("/")[3:]  # after /v1/jobs/
        job_id = parts[0]
        tail = parts[1] if len(parts) > 1 else ""
        if len(parts) > 2 or (tail and tail not in ("events", "result")):
            await _send_error(send, 404, f"no such route: {path}")
            return
        if method != "GET":
            await _send_error(send, 405, f"{method} not allowed here")
            return
        job = self.manager.get(job_id)
        if job is None:
            await _send_error(send, 404, f"unknown job {job_id!r}")
            return
        if tail == "":
            await _send_json(send, 200, job.detail())
        elif tail == "events":
            await self._events(scope, receive, send, job, query)
        else:
            await self._result(send, job, query)

    # -- simple endpoints ----------------------------------------------
    async def _healthz(self, send) -> None:
        loop = asyncio.get_running_loop()
        counts = await loop.run_in_executor(None, self.manager.counts)
        await _send_json(send, 200, {
            "status": "ok",
            "version": __version__,
            "jobs": counts,
        })

    async def _store_stats(self, send) -> None:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, self.manager.store_stats)
        await _send_json(send, 200, stats)

    # -- submission ----------------------------------------------------
    async def _submit(self, receive, send) -> None:
        body = await _read_body(receive)
        if body is None:
            await _send_error(send, 413, "request body too large")
            return
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            await _send_error(send, 400, f"body is not valid JSON: {exc}")
            return
        try:
            request = parse_job_request(data)
        except BadRequestError as exc:
            await _send_error(send, 400, str(exc))
            return
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                None, self.manager.submit, request)
        except QueueFullError as exc:
            await _send_json(send, 429, {
                "error": str(exc), "queue_depth": exc.depth,
                "queue_limit": exc.limit})
            return
        except ServiceClosedError as exc:
            await _send_error(send, 503, str(exc))
            return
        job = outcome.job
        payload = job.detail()
        payload["outcome"] = outcome.outcome
        payload["deduped"] = outcome.deduped
        # `cached` in the POST response answers "did THIS submission
        # cost a simulation?" — true whenever the job already finished
        # or was answered warm from the store.
        payload["cached"] = outcome.cached
        status = 201 if outcome.outcome == "created" else 200
        await _send_json(send, status, payload)

    # -- results -------------------------------------------------------
    async def _result(self, send, job: Job,
                      query: Dict[str, str]) -> None:
        fmt = query.get("format", "json")
        fmt = _FORMAT_ALIASES.get(fmt, fmt)
        if fmt not in _RESULT_FORMATS:
            await _send_error(
                send, 400,
                f"unknown format {fmt!r}; formats: json, ascii, md, "
                f"tex, csv, html")
            return
        if job.document is None:
            await _send_json(send, 409, {
                "error": f"job {job.job_id} has no result yet "
                         f"(state: {job.state})",
                "state": job.state})
            return
        if fmt == "json":
            # The exact `campaign run --out` bytes.
            text = render_json(job.document)
        else:
            doc = parse_document(job.document)
            tables = tables_for_document(doc)
            text = render_tables(tables, fmt) + "\n"
        await _send_text(send, 200, text, _CONTENT_TYPES[fmt])

    # -- SSE -----------------------------------------------------------
    async def _events(self, scope, receive, send, job: Job,
                      query: Dict[str, str]) -> None:
        after = -1
        for name, value in scope.get("headers", []):
            if name.lower() == b"last-event-id":
                after = _parse_seq(value.decode("latin-1"), after)
        if "after" in query:
            after = _parse_seq(query["after"], after)
        await send({
            "type": "http.response.start",
            "status": 200,
            "headers": [
                (b"content-type", b"text/event-stream; charset=utf-8"),
                (b"cache-control", b"no-store"),
            ],
        })
        await _stream_events(receive, send, job.log, after)


class ClientDisconnect(Exception):
    """The HTTP client went away mid-response."""


def _parse_seq(text: str, default: int) -> int:
    try:
        return int(text)
    except ValueError:
        return default


async def _watch_disconnect(receive) -> None:
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            return


async def _next_event(iterator):
    try:
        return await iterator.__anext__()
    except StopAsyncIteration:
        return None


async def _stream_events(receive, send, log: JobEventLog,
                         after: int) -> None:
    """Replay ``log`` from ``after`` and tail it until closed.

    Ends cleanly when the log closes (job finished) or the client
    disconnects; a subscriber therefore always receives a prefix of
    the one canonical event sequence.
    """
    watcher = asyncio.ensure_future(_watch_disconnect(receive))
    iterator = log.subscribe(after)
    try:
        while True:
            step = asyncio.ensure_future(_next_event(iterator))
            done, _pending = await asyncio.wait(
                {step, watcher}, return_when=asyncio.FIRST_COMPLETED)
            if step not in done:
                step.cancel()
                raise ClientDisconnect
            event = step.result()
            if event is None:
                break
            seq, kind, data = event
            await send({"type": "http.response.body",
                        "body": sse_frame(seq, kind, data),
                        "more_body": True})
        await send({"type": "http.response.body", "body": b"",
                    "more_body": False})
    finally:
        watcher.cancel()
        await iterator.aclose()


# -- response helpers -------------------------------------------------
async def _read_body(receive) -> Optional[bytes]:
    chunks = []
    size = 0
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise ClientDisconnect
        chunk = message.get("body", b"")
        size += len(chunk)
        if size > MAX_BODY_BYTES:
            return None
        chunks.append(chunk)
        if not message.get("more_body"):
            return b"".join(chunks)


async def _send_text(send, status: int, text: str,
                     content_type: str) -> None:
    body = text.encode("utf-8")
    await send({
        "type": "http.response.start",
        "status": status,
        "headers": [
            (b"content-type", content_type.encode("latin-1")),
            (b"content-length", str(len(body)).encode("latin-1")),
        ],
    })
    await send({"type": "http.response.body", "body": body,
                "more_body": False})


async def _send_json(send, status: int, payload: Dict[str, Any]) -> None:
    await _send_text(send, status,
                     json.dumps(payload, sort_keys=True, indent=2) + "\n",
                     "application/json")


async def _send_error(send, status: int, message: str) -> None:
    await _send_json(send, status, {"error": message})


__all__ = [
    "ClientDisconnect",
    "MAX_BODY_BYTES",
    "create_app",
]
