"""Diagnosis-as-a-service: the HTTP job server over the campaign engine.

The add-on protocol's simulation stack, behind a small HTTP API:
clients POST a RunSpec or campaign description to ``/v1/jobs`` and get
back a **content-addressed job id** (every task pinned by
:func:`~repro.spec.RunSpec.full_digest`).  That identity does the
heavy lifting:

* concurrent identical submissions attach to one in-flight run — N
  clients cost one simulation;
* submissions whose results are already in the
  :class:`~repro.store.ResultStore` return ``cached: true`` without
  executing anything (the store-first contract, now over the wire);
* progress streams as Server-Sent Events with deterministic,
  replayable event logs — late subscribers see byte-identical frames;
* results are the same ``repro-campaign-result/2`` documents the CLI
  writes (``?format=json`` is byte-identical to ``campaign run
  --out``), plus every ``results render`` table format.

Layout: :mod:`~repro.service.serialization` (request → definition +
job id), :mod:`~repro.service.jobs` (bounded job manager),
:mod:`~repro.service.events` (event logs / SSE), :mod:`~repro.service.
app` (ASGI routes), :mod:`~repro.service.http` (stdlib asyncio host),
:mod:`~repro.service.asgi` (optional uvicorn host behind the
``service`` extra).  Everything except that last hop is stdlib-only.

Entry point: ``repro-diag serve``.
"""

from .app import create_app
from .asgi import ServiceUnavailableError, have_uvicorn, require_uvicorn
from .events import EventHub, JobEventLog, sse_frame
from .http import ServiceThread, start_server
from .jobs import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    Job,
    JobManager,
    QueueFullError,
    ServiceClosedError,
)
from .serialization import BadRequestError, JobRequest, parse_job_request

__all__ = [
    "BadRequestError",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WORKERS",
    "EventHub",
    "Job",
    "JobEventLog",
    "JobManager",
    "JobRequest",
    "QueueFullError",
    "ServiceClosedError",
    "ServiceThread",
    "ServiceUnavailableError",
    "create_app",
    "have_uvicorn",
    "parse_job_request",
    "require_uvicorn",
    "sse_frame",
    "start_server",
]
