"""A minimal stdlib asyncio HTTP/1.1 host for the ASGI app.

Scope: exactly what the diagnosis service needs — ``Content-Length``
request bodies, one request per connection (``Connection: close``),
buffered responses with a computed ``Content-Length``, and unbuffered
streamed responses for SSE (the stream ends when the connection
closes).  Not a general web server; the ``service`` extra swaps in
uvicorn for anything beyond that (:mod:`repro.service.asgi`).

:class:`ServiceThread` runs the server (with its own event loop) on a
background thread — the shape the tests and the CLI's foreground
process both use.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Optional, Tuple

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}
_MAX_HEADER_BYTES = 64 * 1024


class _BadRequest(Exception):
    pass


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, bytes, list, bytes]:
    """Parse one request; returns (method, path, query, headers, body)."""
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _BadRequest(f"malformed request line {lines[0]!r}") from None
    headers = []
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        headers.append((name.strip().lower().encode("latin-1"),
                        value.strip().encode("latin-1")))
    length = 0
    for name, value in headers:
        if name == b"content-length":
            try:
                length = int(value)
            except ValueError:
                raise _BadRequest("bad Content-Length") from None
        elif name == b"transfer-encoding":
            raise _BadRequest("chunked request bodies are unsupported")
    body = await reader.readexactly(length) if length else b""
    path, _sep, query = target.partition("?")
    return method, path, query.encode("latin-1"), headers, body


async def _handle(app: Callable, reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    try:
        try:
            method, path, query, headers, body = \
                await _read_request(reader)
        except (_BadRequest, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                         b"content-length: 0\r\nconnection: close\r\n\r\n")
            await writer.drain()
            return
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query,
            "headers": headers,
            "scheme": "http",
        }
        sent_body = [False]

        async def receive():
            if not sent_body[0]:
                sent_body[0] = True
                return {"type": "http.request", "body": body,
                        "more_body": False}
            # Block until the peer goes away, then report disconnect —
            # this is what lets SSE handlers notice a closed client.
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    return {"type": "http.disconnect"}

        state = {"status": None, "headers": None, "streaming": False,
                 "buffer": b"", "done": False}

        async def send(message):
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = list(message.get("headers", []))
                return
            if message["type"] != "http.response.body":
                raise RuntimeError(
                    f"unsupported ASGI message {message['type']!r}")
            chunk = message.get("body", b"")
            more = bool(message.get("more_body"))
            if not state["streaming"]:
                if more and state["buffer"] == b"":
                    # First chunk of a stream: flush headers now,
                    # no Content-Length, terminate by closing.
                    state["streaming"] = True
                    _write_head(writer, state["status"],
                                state["headers"], None)
                    writer.write(chunk)
                    await writer.drain()
                    return
                state["buffer"] += chunk
                if more:
                    return
                _write_head(writer, state["status"], state["headers"],
                            len(state["buffer"]))
                writer.write(state["buffer"])
                state["done"] = True
                await writer.drain()
                return
            writer.write(chunk)
            await writer.drain()
            if not more:
                state["done"] = True

        try:
            await app(scope, receive, send)
        except Exception:
            if state["status"] is None and not state["done"]:
                writer.write(
                    b"HTTP/1.1 500 Internal Server Error\r\n"
                    b"content-length: 0\r\nconnection: close\r\n\r\n")
                await writer.drain()
            raise
    except (ConnectionError, asyncio.CancelledError):
        pass
    except Exception:  # keep serving other connections
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, Exception):
            pass


def _write_head(writer: asyncio.StreamWriter, status: int, headers,
                content_length: Optional[int]) -> None:
    reason = _REASONS.get(status, "Unknown")
    out = [f"HTTP/1.1 {status} {reason}\r\n".encode("latin-1")]
    have_length = False
    for name, value in headers:
        if name.lower() == b"content-length":
            have_length = True
        out.append(name + b": " + value + b"\r\n")
    if content_length is not None and not have_length:
        out.append(b"content-length: "
                   + str(content_length).encode("latin-1") + b"\r\n")
    out.append(b"connection: close\r\n\r\n")
    writer.write(b"".join(out))


async def start_server(app: Callable, host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.base_events.Server:
    """Bind and start serving ``app``; returns the asyncio server."""

    async def handler(reader, writer):
        await _handle(app, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


class ServiceThread:
    """The HTTP server on a daemon thread with its own event loop.

    ``start()`` returns once the socket is bound (``port`` is then the
    real port, even when 0 was requested); ``stop()`` closes the
    server and joins the thread.  The job manager is shut down by the
    caller — the thread only owns the HTTP frontend.
    """

    def __init__(self, app: Callable, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def start(self) -> "ServiceThread":
        """Start the host thread; blocks until the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise self._failure
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                start_server(self.app, self.host, self.port))
        except BaseException as exc:  # bind failure surfaces in start()
            self._failure = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop the event loop and join the host thread."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "ServiceThread",
    "start_server",
]
