"""Optional uvicorn host behind the ``service`` extra.

The service itself is stdlib-only (:mod:`repro.service.http`); this
module is the soft-dependency gate — the same convention
:mod:`repro.vec` uses for numpy — for running the identical ASGI app
under a production-grade server instead:

    pip install "repro[service]"
    repro-diag serve --impl uvicorn

Without the extra, :func:`require_uvicorn` raises
:class:`ServiceUnavailableError` with that instruction and the CLI
exits 2; the stdlib implementation stays fully functional either way.
"""

from __future__ import annotations

from typing import Callable


class ServiceUnavailableError(RuntimeError):
    """uvicorn is not installed (the ``service`` extra is missing)."""


def have_uvicorn() -> bool:
    """Return True when uvicorn is importable (the ``service`` extra)."""
    try:
        import uvicorn  # noqa: F401
    except ImportError:
        return False
    return True


def require_uvicorn():
    """The uvicorn module, or a :class:`ServiceUnavailableError`.

    Mirrors :func:`repro.vec.require_numpy`: import at the point of
    use, fail with an actionable message naming the extra.
    """
    try:
        import uvicorn
    except ImportError as exc:
        raise ServiceUnavailableError(
            "uvicorn is not installed; the stdlib server runs without "
            "it (`repro-diag serve`), or install the extra with "
            "`pip install repro[service]` to use --impl uvicorn"
        ) from exc
    return uvicorn


def run_uvicorn(app: Callable, host: str, port: int) -> None:
    """Serve ``app`` under uvicorn (blocks until interrupted)."""
    uvicorn = require_uvicorn()
    uvicorn.run(app, host=host, port=port, log_level="info")


__all__ = [
    "ServiceUnavailableError",
    "have_uvicorn",
    "require_uvicorn",
    "run_uvicorn",
]
