"""Per-job event logs with record-and-stream fan-out.

Every job owns one :class:`JobEventLog`: an append-only sequence of
small JSON-native event dicts, written from the worker thread that
runs the campaign and read by any number of SSE subscribers on the
asyncio side.  The design rule is **replay determinism**: a
subscriber's stream is always *the log itself*, replayed from the
requested sequence number and then tailed live — so a subscriber that
connects after the job finished receives byte-for-byte the same
frames an early subscriber saw arrive one at a time (the recorder
pattern: record once, stream any number of times).

Thread model: ``append``/``close`` are called from worker threads and
only touch state under the log's lock; waiting subscribers are woken
through ``loop.call_soon_threadsafe``, so no asyncio object is ever
touched off its loop.  Event payloads deliberately carry no wall-clock
timestamps — with a serial engine the whole log is a deterministic
function of the submitted spec, which is what the replay tests pin.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import AsyncIterator, Dict, List, Optional, Tuple

#: Hard cap on retained events per job; a log that overflows drops the
#: oldest events and marks itself truncated (SSE replay then starts at
#: the oldest retained sequence number).  Progress events are O(tasks),
#: so ordinary campaigns sit far below this.
DEFAULT_MAX_EVENTS = 10_000


class JobEventLog:
    """An append-only, fan-out event log for one job."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._max_events = max_events
        self._lock = threading.Lock()
        #: (seq, kind, data) triples, oldest first.
        self._events: List[Tuple[int, str, Dict]] = []
        self._next_seq = 0
        self._dropped = 0
        self._closed = False
        self._waiters: List[Tuple[asyncio.AbstractEventLoop,
                                  asyncio.Event]] = []

    # -- producer side (worker threads) --------------------------------
    def append(self, kind: str, data: Dict) -> int:
        """Record one event; returns its sequence number."""
        with self._lock:
            if self._closed:
                raise RuntimeError("event log is closed")
            seq = self._next_seq
            self._next_seq += 1
            self._events.append((seq, kind, dict(data)))
            if len(self._events) > self._max_events:
                overflow = len(self._events) - self._max_events
                del self._events[:overflow]
                self._dropped += overflow
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)
        return seq

    def close(self) -> None:
        """Seal the log: subscribers drain what remains, then finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)

    @staticmethod
    def _wake(waiters) -> None:
        for loop, event in waiters:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # subscriber's loop already closed; nothing waits

    # -- introspection -------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return self._next_seq

    def events(self, after: int = -1) -> List[Tuple[int, str, Dict]]:
        """A snapshot of recorded events with ``seq > after``."""
        with self._lock:
            return [e for e in self._events if e[0] > after]

    # -- consumer side (asyncio) ---------------------------------------
    async def subscribe(self, after: int = -1
                        ) -> AsyncIterator[Tuple[int, str, Dict]]:
        """Replay events with ``seq > after``, then tail until closed.

        Late subscribers replay the full log; reconnecting subscribers
        pass the last sequence number they saw (SSE ``Last-Event-ID``).
        """
        loop = asyncio.get_running_loop()
        cursor = after
        while True:
            with self._lock:
                pending = [e for e in self._events if e[0] > cursor]
                closed = self._closed
                if not pending and not closed:
                    wakeup = asyncio.Event()
                    self._waiters.append((loop, wakeup))
            if pending:
                for event in pending:
                    cursor = event[0]
                    yield event
                continue
            if closed:
                return
            await wakeup.wait()


def sse_frame(seq: int, kind: str, data: Dict) -> bytes:
    """One Server-Sent-Events frame for an event triple.

    ``id`` carries the sequence number (so ``Last-Event-ID`` resumes),
    ``event`` the kind, ``data`` the sorted-key JSON payload — stable
    bytes for a stable log.
    """
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return (f"id: {seq}\nevent: {kind}\ndata: {payload}\n\n"
            .encode("utf-8"))


class EventHub:
    """The registry of per-job event logs the service fans out from."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._max_events = max_events
        self._lock = threading.Lock()
        self._logs: Dict[str, JobEventLog] = {}

    def create(self, job_id: str) -> JobEventLog:
        """The log for ``job_id`` (created on first request)."""
        with self._lock:
            log = self._logs.get(job_id)
            if log is None:
                log = self._logs[job_id] = JobEventLog(self._max_events)
            return log

    def get(self, job_id: str) -> Optional[JobEventLog]:
        """Return the log for ``job_id``, or None if never created."""
        with self._lock:
            return self._logs.get(job_id)


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "EventHub",
    "JobEventLog",
    "sse_frame",
]
