"""Job-request parsing: client JSON in, campaign definition + identity out.

``POST /v1/jobs`` accepts exactly the inputs ``repro-diag campaign
run`` does, as JSON:

* ``{"campaign": "rare-events", "reps": 2, "nodes": 4, "seed": 0}`` —
  a named campaign with its CLI knobs (defaults match the CLI);
* ``{"spec": {...}}`` / a bare RunSpec object — one spec;
* ``{"specs": [...]}`` / a bare array — an ad-hoc spec-file campaign;
* an optional ``"backend": "event" | "vectorized"`` override applied
  to every spec, mirroring ``campaign run --backend``.

The **job id is a content address**: :func:`repro.spec.RunSpec.
full_digest` pins each task's inputs, :func:`repro.store.store_key`
adds reducer + package version, and the job id is the digest of the
ordered key list (:func:`repro.campaign.state.campaign_id`).  Two
clients POSTing semantically identical submissions therefore compute
the same job id before any work happens — which is what lets the job
manager attach them to one in-flight run, and lets a warm store answer
without executing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List

from ..campaign.definitions import (
    NAMED_CAMPAIGNS,
    CampaignDefinition,
    build_campaign,
)
from ..campaign.state import campaign_id
from ..spec import RunSpec
from ..store import store_key

#: Keys accepted alongside ``"campaign"`` in a named-campaign request.
_CAMPAIGN_KNOBS = {"reps": 5, "nodes": 4, "seed": 0}


class BadRequestError(ValueError):
    """The request body is not a valid job submission (HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One parsed submission: definition, content identity, echo data."""

    job_id: str
    definition: CampaignDefinition
    #: The store key of every task, in task order (the dedup identity).
    keys: List[str]
    #: What the client asked for, echoed back in responses.
    request: Dict[str, Any]


def _specs_definition(spec_dicts: List[Any],
                      name: str = "spec-file") -> CampaignDefinition:
    if not spec_dicts:
        raise BadRequestError("submission contains no specs")
    labeled = []
    for index, spec_dict in enumerate(spec_dicts):
        if not isinstance(spec_dict, dict):
            raise BadRequestError(
                f"spec #{index} must be a JSON object, got "
                f"{type(spec_dict).__name__}")
        try:
            spec = RunSpec.from_dict(spec_dict)
        except (ValueError, TypeError, KeyError) as exc:
            raise BadRequestError(f"spec #{index}: {exc}") from exc
        labeled.append((spec.digest(), spec))
    return CampaignDefinition(
        name=name, labeled_specs=labeled,
        params={"specs": len(labeled)},
        aggregate=lambda results: results)


def _named_definition(data: Dict[str, Any]) -> CampaignDefinition:
    name = data["campaign"]
    if name not in NAMED_CAMPAIGNS:
        raise BadRequestError(
            f"unknown campaign {name!r}; named campaigns: "
            f"{NAMED_CAMPAIGNS}")
    knobs = {}
    for key, default in _CAMPAIGN_KNOBS.items():
        value = data.get(key, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise BadRequestError(f"{key!r} must be an integer")
        knobs[key] = value
    unknown = set(data) - set(_CAMPAIGN_KNOBS) - {"campaign", "backend"}
    if unknown:
        raise BadRequestError(
            f"unknown field(s) {sorted(unknown)} in a named-campaign "
            f"submission; accepted: {sorted(_CAMPAIGN_KNOBS)}")
    return build_campaign(name, **knobs)


def _apply_backend(definition: CampaignDefinition,
                   backend: Any) -> CampaignDefinition:
    if backend is None:
        return definition
    if backend not in ("event", "vectorized"):
        raise BadRequestError(
            f"unknown backend {backend!r}; backends: event, vectorized")
    if backend == "vectorized":
        from ..vec import BackendUnavailableError, require_numpy

        try:
            require_numpy()
        except BackendUnavailableError as exc:
            raise BadRequestError(str(exc)) from exc
    return replace(definition, labeled_specs=[
        (label, replace(spec, backend=backend))
        for label, spec in definition.labeled_specs])


def parse_job_request(data: Any) -> JobRequest:
    """Parse one ``POST /v1/jobs`` body into a :class:`JobRequest`.

    Raises :class:`BadRequestError` with a client-facing message on
    any malformed input — the app maps it to HTTP 400 exactly like the
    CLI maps the same :class:`ValueError` family to exit 2.
    """
    backend = None
    if isinstance(data, dict):
        backend = data.get("backend")
    if isinstance(data, list):
        definition = _specs_definition(data)
    elif isinstance(data, dict) and "campaign" in data:
        definition = _named_definition(data)
    elif isinstance(data, dict) and "specs" in data:
        if not isinstance(data["specs"], list):
            raise BadRequestError('"specs" must be an array')
        definition = _specs_definition(data["specs"])
    elif isinstance(data, dict) and isinstance(data.get("spec"), dict):
        # {"spec": {...}} wrapper — NOT a bare RunSpec, whose own
        # "spec" key is the schema-tag *string*.
        definition = _specs_definition([data["spec"]])
    elif isinstance(data, dict):
        # A bare RunSpec object (the `repro-diag run` input shape).
        spec_dict = {k: v for k, v in data.items() if k != "backend"}
        definition = _specs_definition([spec_dict])
    else:
        raise BadRequestError(
            "submission must be a JSON object or an array of RunSpec "
            "objects")
    definition = _apply_backend(definition, backend)
    keys = [store_key(spec) for _label, spec in definition.labeled_specs]
    request_echo = {"campaign": definition.name,
                    "params": dict(definition.params)}
    if backend is not None:
        request_echo["backend"] = backend
    return JobRequest(job_id=campaign_id(keys), definition=definition,
                      keys=keys, request=request_echo)


__all__ = [
    "BadRequestError",
    "JobRequest",
    "parse_job_request",
]
