"""The async job manager: digest-keyed dedup over a bounded worker pool.

One :class:`JobManager` owns every job the service has seen, keyed by
the content-addressed job id :mod:`repro.service.serialization`
computes.  Submission follows a strict store-first protocol:

1. **Known job id** — the submission *attaches*: an in-flight job is
   shared (concurrent identical POSTs cost one simulation), a finished
   job is returned as-is (``cached`` when it never executed, or once
   its results are all in the store — which is always, after success).
2. **Unknown id, warm store** — every task key is already indexed, so
   the job runs its aggregation inline on the submitting thread
   (pure index lookups through the campaign engine; nothing is
   dispatched, no queue slot is consumed) and returns ``done`` with
   ``cached: true`` immediately.  Warm traffic therefore never sees
   back-pressure.
3. **Unknown id, cold store** — the job is enqueued if the bounded
   queue has room, else :class:`QueueFullError` (HTTP 429) tells the
   client to retry later.  A worker thread runs the ordinary campaign
   engine (``resume=True``: a previous server's partial results are
   picked up from the store), streaming progress into the job's event
   log.

States are ``queued | running | done | failed``; failures carry the
engine's structured :class:`~repro.runner.pool.TaskError` payloads.
Graceful shutdown drains in-flight and queued jobs (every commit is
already in the store, so even an ungraceful death leaves re-submitted
jobs resumable — that is the store's checkpoint contract).

Thread model: the manager lock guards the job table and counters; each
worker thread keeps its own :class:`~repro.store.ResultStore` handle
on the shared root (see the store's concurrency notes); event logs do
their own locking.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..campaign.definitions import result_document
from ..campaign.engine import run_campaign
from ..obs.registry import MetricsRegistry, merge_snapshots
from ..store import ResultStore
from .events import EventHub, JobEventLog
from .serialization import JobRequest

#: Default bound on queued + running jobs (HTTP 429 past it).
DEFAULT_QUEUE_LIMIT = 8
#: Default worker threads executing campaigns.
DEFAULT_WORKERS = 2

_STATES = ("queued", "running", "done", "failed")


class QueueFullError(RuntimeError):
    """The bounded job queue is full (HTTP 429; retry later)."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"job queue is full ({depth}/{limit} jobs queued or "
            f"running); retry after a job finishes")
        self.depth = depth
        self.limit = limit


class ServiceClosedError(RuntimeError):
    """The manager is shutting down and accepts no new work (503)."""


@dataclass
class Job:
    """One submission's lifecycle record."""

    job_id: str
    name: str
    params: Dict[str, Any]
    labels: List[str]
    #: Submission order (0-based) — deterministic, unlike wall clock.
    ordinal: int
    log: JobEventLog
    state: str = "queued"
    #: True when the job never executed a simulation (warm store or
    #: attached after completion).
    cached: bool = False
    hits: int = 0
    misses: int = 0
    retried: int = 0
    #: The deterministic ``campaign run --out`` document (set once the
    #: job reaches ``done``/``failed``; byte-identical to the CLI's).
    document: Optional[Dict[str, Any]] = None
    #: Structured TaskError payloads (``failed`` jobs).
    errors: List[Dict[str, Any]] = field(default_factory=list)
    #: The engine registry snapshot for this job's run.
    engine_snapshot: Dict[str, Any] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.labels)

    def summary(self) -> Dict[str, Any]:
        """The JSON shape ``GET /v1/jobs`` lists."""
        return {
            "job_id": self.job_id,
            "campaign": self.name,
            "state": self.state,
            "cached": self.cached,
            "total": self.total,
            "hits": self.hits,
            "misses": self.misses,
            "errors": len(self.errors),
        }

    def detail(self) -> Dict[str, Any]:
        """The JSON shape ``GET /v1/jobs/{id}`` returns."""
        data = self.summary()
        data["params"] = dict(self.params)
        data["labels"] = list(self.labels)
        data["retried"] = self.retried
        data["events"] = len(self.log)
        if self.errors:
            data["error_details"] = list(self.errors)
        return data


@dataclass(frozen=True)
class SubmitOutcome:
    """What one POST produced: the job plus how it was satisfied."""

    job: Job
    #: ``created`` (new cold job queued), ``attached`` (dedup onto an
    #: in-flight or finished job), or ``cached`` (answered warm from
    #: the store without executing).
    outcome: str

    @property
    def cached(self) -> bool:
        return self.outcome == "cached" or self.job.cached or (
            self.job.state == "done")

    @property
    def deduped(self) -> bool:
        return self.outcome == "attached"


class JobManager:
    """Digest-keyed job table + bounded thread pool over one store."""

    def __init__(self,
                 store_root: Optional[str] = None,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 engine_jobs: int = 1,
                 retries: int = 2,
                 task_timeout: Optional[float] = None,
                 snapshot_every: int = 0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.store_root = store_root
        self.engine_jobs = engine_jobs
        self.retries = retries
        self.task_timeout = task_timeout
        #: Emit a ``snapshot`` event (the engine's MetricsRegistry
        #: snapshot) every N committed tasks; 0 = only at the end.
        self.snapshot_every = snapshot_every
        self.queue_limit = queue_limit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.hub = EventHub()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._active = 0  # queued + running jobs
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix="repro-service")
        self._local = threading.local()
        self._store_registries: List[MetricsRegistry] = []

    # -- stores --------------------------------------------------------
    def _store(self) -> ResultStore:
        """This thread's store handle (one sqlite connection each)."""
        store = getattr(self._local, "store", None)
        if store is None:
            registry = MetricsRegistry()
            store = ResultStore(self.store_root, metrics=registry)
            self._local.store = store
            with self._lock:
                self._store_registries.append(registry)
        return store

    def store_stats(self) -> Dict[str, Any]:
        """The store footprint (``GET /v1/store/stats``)."""
        return self._store().stats()

    # -- metrics -------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.metrics.counter(name).inc(n)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Service counters plus merged per-thread store counters."""
        with self._lock:
            service = self.metrics.snapshot()
            store = merge_snapshots(
                r.snapshot() for r in self._store_registries)
            engine = merge_snapshots(
                job.engine_snapshot for job in self._jobs.values()
                if job.engine_snapshot)
        return {"service": service, "store": store, "engine": engine}

    # -- job table -----------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """Return the job for ``job_id``, or None if unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for ``/healthz``)."""
        counts = {state: 0 for state in _STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    # -- submission ----------------------------------------------------
    def submit(self, request: JobRequest) -> SubmitOutcome:
        """Admit one submission; never executes a duplicate.

        Runs on the caller's thread (the app's request executor).
        Raises :class:`QueueFullError` on back-pressure and
        :class:`ServiceClosedError` during shutdown.
        """
        self._count("service.submitted")
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "service is shutting down; no new jobs accepted")
            job = self._jobs.get(request.job_id)
            if job is not None:
                self.metrics.counter("service.attached").inc()
                return SubmitOutcome(job=job, outcome="attached")

        # Warm-store fast path: every key indexed -> aggregate inline,
        # no queue slot, no dispatch.  (has() is an index probe; if a
        # record turns out corrupt the engine re-runs it — the inline
        # run then degrades to a cold run on this thread, which is
        # correctness-preserving if slower.)
        store = self._store()
        warm = all(store.has(key) for key in request.keys)

        enqueue = False
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "service is shutting down; no new jobs accepted")
            job = self._jobs.get(request.job_id)
            if job is not None:
                self.metrics.counter("service.attached").inc()
                return SubmitOutcome(job=job, outcome="attached")
            if not warm and self._active >= self.queue_limit:
                self.metrics.counter("service.rejected").inc()
                raise QueueFullError(self._active, self.queue_limit)
            job = Job(
                job_id=request.job_id,
                name=request.definition.name,
                params=dict(request.definition.params),
                labels=[label for label, _spec
                        in request.definition.labeled_specs],
                ordinal=len(self._order),
                log=self.hub.create(request.job_id),
            )
            self._jobs[request.job_id] = job
            self._order.append(request.job_id)
            if warm:
                job.cached = True
                self.metrics.counter("service.cached").inc()
            else:
                self._active += 1
                enqueue = True
                self.metrics.counter("service.created").inc()
                self.metrics.gauge("service.queue_depth").set(self._active)
        job.log.append("state", {"job_id": job.job_id,
                                 "state": "queued", "cached": job.cached})
        if warm:
            # Inline warm run on the submitting thread: index lookups
            # plus aggregation, completed before the POST returns.
            self._run_job(job, request)
            return SubmitOutcome(job=job, outcome="cached")
        self._executor.submit(self._run_job, job, request)
        return SubmitOutcome(job=job, outcome="created")

    # -- execution -----------------------------------------------------
    def _run_job(self, job: Job, request: JobRequest) -> None:
        with self._lock:
            job.state = "running"
        registry = MetricsRegistry()
        committed = [0]

        def progress(event: Dict[str, Any]) -> None:
            kind = event.pop("kind")
            job.log.append(kind, event)
            if kind == "task":
                committed[0] += 1
                if self.snapshot_every and \
                        committed[0] % self.snapshot_every == 0:
                    job.log.append("snapshot", registry.snapshot())

        job.log.append("state", {"job_id": job.job_id, "state": "running"})
        try:
            result = run_campaign(
                request.definition.labeled_specs,
                name=request.definition.name,
                store=self._store(),
                jobs=self.engine_jobs,
                retries=self.retries,
                task_timeout=self.task_timeout,
                resume=True,
                metrics=registry,
                progress=progress,
            )
            document = result_document(request.definition, result)
        except Exception as exc:  # engine-level crash, not a TaskError
            with self._lock:
                job.state = "failed"
                job.errors = [{"type": type(exc).__name__,
                               "message": str(exc), "timed_out": False}]
                job.engine_snapshot = registry.snapshot()
                self.metrics.counter("service.failed").inc()
                self._retire_locked(job)
            job.log.append("failed", {"state": "failed",
                                      "errors": job.errors})
            job.log.close()
            return
        errors = [{"index": e.index, "type": e.error_type,
                   "message": e.message, "timed_out": e.timed_out}
                  for e in result.errors]
        job.log.append("snapshot", registry.snapshot())
        with self._lock:
            job.hits = result.hits
            job.misses = result.misses
            job.retried = result.retried
            job.document = document
            job.errors = errors
            job.engine_snapshot = registry.snapshot()
            job.state = "failed" if errors else "done"
            self.metrics.counter("service.completed").inc()
            if errors:
                self.metrics.counter("service.failed").inc()
            self.metrics.counter("service.executed_tasks").inc(
                result.misses)
            self.metrics.counter("service.cached_tasks").inc(result.hits)
            self._retire_locked(job)
        if errors:
            job.log.append("failed", {"state": "failed", "errors": errors})
        else:
            job.log.append("done", {
                "state": "done", "hits": result.hits,
                "misses": result.misses, "total": job.total,
                "cached": job.cached})
        job.log.close()

    def _retire_locked(self, job: Job) -> None:
        """Release the job's queue slot (caller holds the lock)."""
        if not job.cached and self._active > 0:
            self._active -= 1
            self.metrics.gauge("service.queue_depth").set(self._active)

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting jobs; drain (or cancel queued) work.

        With ``drain`` every queued and running job finishes before the
        call returns — in-flight results keep committing to the store.
        Without it, queued jobs are cancelled (they were never started;
        their event logs close on a terminal ``failed`` event) and only
        in-flight jobs are awaited.  Either way the store is left
        consistent: a later submission of the same work resumes from
        whatever was committed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True, cancel_futures=not drain)
        with self._lock:
            abandoned = [job for job in self._jobs.values()
                         if job.state == "queued"]
            for job in abandoned:
                job.state = "failed"
                job.errors = [{"type": "ServiceShutdown",
                               "message": "service shut down before the "
                                          "job started; resubmit to "
                                          "resume from the store",
                               "timed_out": False}]
                self._retire_locked(job)
        for job in abandoned:
            job.log.append("failed", {"state": "failed",
                                      "errors": job.errors})
            job.log.close()
        # Close every thread-local store handle we can reach (each
        # belongs to a pool thread that no longer runs; sqlite handles
        # are freed with the threads, this is just prompt hygiene).
        store = getattr(self._local, "store", None)
        if store is not None:
            store.close()
            self._local.store = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WORKERS",
    "Job",
    "JobManager",
    "QueueFullError",
    "ServiceClosedError",
    "SubmitOutcome",
]
