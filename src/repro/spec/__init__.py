"""Declarative run specifications and the one build path onto them.

Every cluster, experiment, sweep and CLI run in this repo can be
described by a single serializable :class:`RunSpec` and assembled by a
single :func:`build` factory::

    from repro.spec import (ClusterSpec, ProtocolSpec, RunSpec,
                            ScenarioSpec, execute)

    spec = RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=42),
        scenarios=(ScenarioSpec("SlotBurst", {"round_index": 6, "slot": 2,
                                              "n_slots": 1}),),
        n_rounds=15,
    )
    print(execute(spec))                  # default summary reducer
    print(RunSpec.from_json(spec.to_json()) == spec)   # lossless

See :mod:`repro.spec.model` for the dataclasses,
:mod:`repro.spec.build` for ``build``/``execute`` and the generic
sweep worker, and :mod:`repro.spec.reducers` for the named-reducer
registry.
"""

from .build import (
    PROVENANCE_PREFIX,
    build,
    execute,
    run_spec_dict,
    strip_provenance,
)
from .model import (
    RUNSPEC_SCHEMA,
    SCENARIO_REGISTRY,
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    VariantSpec,
)
from .reducers import (
    SummaryReducer,
    register_reducer,
    registered_reducers,
    resolve_reducer,
)

__all__ = [
    "RUNSPEC_SCHEMA",
    "SCENARIO_REGISTRY",
    "PROVENANCE_PREFIX",
    "ClusterSpec",
    "ProtocolSpec",
    "RunSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "VariantSpec",
    "SummaryReducer",
    "build",
    "execute",
    "run_spec_dict",
    "strip_provenance",
    "register_reducer",
    "registered_reducers",
    "resolve_reducer",
]
