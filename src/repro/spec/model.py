"""Declarative run specifications: one serializable description per run.

A :class:`RunSpec` captures *everything* that determines a simulated
campaign run — cluster geometry, protocol tuning, fault scenarios, node
schedules and the service variant — as frozen dataclasses that
round-trip losslessly through plain JSON.  The motivation (see the
distributed system-level diagnosis literature: a diagnosis campaign is
itself configurable data) is operational: a run you can serialize is a
run you can pickle to a worker pool, shard across machines, cache by
digest, diff, or replay byte-identically.

The pieces:

* :class:`ProtocolSpec` — wraps :class:`~repro.core.config.ProtocolConfig`
  (JSON-native: the isolation mode is a string);
* :class:`ClusterSpec` — substrate geometry (round length, seed,
  channels, trace level);
* :class:`ScenarioSpec` — one fault scenario by registry ``type`` name
  plus its parameter dict; :data:`SCENARIO_REGISTRY` covers every
  scenario class in :mod:`repro.faults.scenarios` and
  :mod:`repro.faults.processes`;
* :class:`ScheduleSpec` — default / static (``exec_after``) / dynamic
  node schedules;
* :class:`VariantSpec` — diagnostic / membership / low-latency service,
  bitset core on/off, bus fast path on/off, byzantine nodes;
* :class:`RunSpec` — the composition, plus the number of rounds to run
  and an optional named reducer (see :mod:`repro.spec.reducers`).

``RunSpec.digest()`` is a stable content hash of the canonical JSON
form; the executor stamps it into the metrics registry so merged
observability reports name the exact runs that produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple, Type, Union

from ..core.config import IsolationMode, ProtocolConfig
from ..core.diagnostic import TRACE_ALL
from ..faults import channels as _channels
from ..faults import processes as _processes
from ..faults import scenarios as _scenarios
from ..faults.scenarios import SerializableScenario
from ..tt.cluster import PAPER_ROUND_LENGTH

#: Schema tag stamped into serialized RunSpecs; bump on layout changes.
RUNSPEC_SCHEMA = "repro-runspec/1"

#: Known execution backends for :attr:`RunSpec.backend`.
BACKENDS = ("event", "vectorized")

#: Every serializable scenario class, by its ``type`` tag.
SCENARIO_REGISTRY: Dict[str, Type[SerializableScenario]] = {
    cls.__name__: cls
    for module in (_scenarios, _processes, _channels)
    for cls in vars(module).values()
    if isinstance(cls, type)
    and issubclass(cls, SerializableScenario)
    and cls.__module__ == module.__name__
    and hasattr(cls, "directives")
}


def _json_canonical(value: Any) -> Any:
    """Normalise ``value`` to JSON-native types (tuples become lists)."""
    return json.loads(json.dumps(value))


@dataclass(frozen=True)
class ProtocolSpec:
    """Serializable mirror of :class:`~repro.core.config.ProtocolConfig`.

    Field semantics are identical to the config's; the only differences
    are representational: ``criticalities`` is a tuple and
    ``isolation_mode`` is the enum *value* string (``"ignore"`` /
    ``"observe"``) so the spec survives JSON.
    """

    n_nodes: int
    penalty_threshold: int
    reward_threshold: int
    criticalities: Tuple[int, ...]
    all_send_curr_round: bool = False
    startup_rounds: int = 1
    isolation_mode: str = IsolationMode.IGNORE.value
    halt_on_self_isolation: Optional[bool] = None
    reintegration_reward_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "criticalities",
                           tuple(int(c) for c in self.criticalities))
        IsolationMode(self.isolation_mode)  # validates the string
        self.to_config()  # delegate the full range checks to the config

    @classmethod
    def from_config(cls, config: ProtocolConfig) -> "ProtocolSpec":
        """The spec describing an existing protocol configuration."""
        return cls(
            n_nodes=config.n_nodes,
            penalty_threshold=config.penalty_threshold,
            reward_threshold=config.reward_threshold,
            criticalities=tuple(config.criticalities),
            all_send_curr_round=config.all_send_curr_round,
            startup_rounds=config.startup_rounds,
            isolation_mode=config.isolation_mode.value,
            halt_on_self_isolation=config.halt_on_self_isolation,
            reintegration_reward_threshold=config.reintegration_reward_threshold,
        )

    def to_config(self) -> ProtocolConfig:
        """The live :class:`ProtocolConfig` this spec describes."""
        return ProtocolConfig(
            n_nodes=self.n_nodes,
            penalty_threshold=self.penalty_threshold,
            reward_threshold=self.reward_threshold,
            criticalities=list(self.criticalities),
            all_send_curr_round=self.all_send_curr_round,
            startup_rounds=self.startup_rounds,
            isolation_mode=IsolationMode(self.isolation_mode),
            halt_on_self_isolation=self.halt_on_self_isolation,
            reintegration_reward_threshold=self.reintegration_reward_threshold,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Substrate geometry: the :class:`~repro.tt.cluster.Cluster` knobs."""

    round_length: float = PAPER_ROUND_LENGTH
    tx_fraction: float = 0.8
    seed: int = 0
    n_channels: int = 1
    trace_level: int = TRACE_ALL

    def __post_init__(self) -> None:
        if self.round_length <= 0:
            raise ValueError("round_length must be positive")
        if not 0.0 < self.tx_fraction < 1.0:
            raise ValueError("tx_fraction must be in (0, 1)")
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fault scenario: registry ``type`` tag plus its parameters.

    ``params`` is exactly what the scenario's ``spec_params`` returns;
    :meth:`build` rebuilds the live scenario, resolving any
    ``rng_stream`` name against a cluster's random streams.
    """

    type: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in SCENARIO_REGISTRY:
            raise ValueError(
                f"unknown scenario type {self.type!r}; known: "
                f"{sorted(SCENARIO_REGISTRY)}")
        object.__setattr__(self, "params", _json_canonical(self.params))

    @classmethod
    def from_scenario(cls, scenario: SerializableScenario) -> "ScenarioSpec":
        """The spec describing a live scenario (via its ``to_dict``)."""
        data = scenario.to_dict()
        return cls(type=data.pop("type"), params=data)

    def build(self, streams=None) -> SerializableScenario:
        """Rebuild the live scenario this spec describes."""
        scenario_cls = SCENARIO_REGISTRY[self.type]
        return scenario_cls.from_dict({"type": self.type, **self.params},
                                      streams=streams)


_SCHEDULE_KINDS = ("default", "static", "dynamic")


@dataclass(frozen=True)
class ScheduleSpec:
    """Node schedule policy: library default, static ``l_i``, or dynamic.

    ``exec_after`` (static only) is either one position applied to every
    node or a per-node tuple, mirroring ``DiagnosedCluster(exec_after=...)``.
    """

    kind: str = "default"
    exec_after: Optional[Union[int, Tuple[int, ...]]] = None

    def __post_init__(self) -> None:
        if self.kind not in _SCHEDULE_KINDS:
            raise ValueError(
                f"schedule kind must be one of {_SCHEDULE_KINDS}, "
                f"got {self.kind!r}")
        if self.exec_after is not None:
            if self.kind != "static":
                raise ValueError("exec_after requires kind='static'")
            if not isinstance(self.exec_after, int):
                object.__setattr__(self, "exec_after",
                                   tuple(int(p) for p in self.exec_after))
        elif self.kind == "static":
            raise ValueError("kind='static' requires exec_after")


_SERVICES = ("diagnostic", "membership", "lowlatency")


@dataclass(frozen=True)
class VariantSpec:
    """Which protocol variant runs, and on which execution paths.

    ``service`` selects the per-node service class;
    ``bitset``/``fast_path`` select the (bit-identical) packed analysis
    core and bus fast path; ``lowlatency_membership`` enables the
    membership flavour of the Sec. 10 low-latency variant;
    ``byzantine_nodes`` lists nodes broadcasting random syndromes.
    """

    service: str = "diagnostic"
    bitset: bool = True
    fast_path: bool = True
    lowlatency_membership: bool = False
    byzantine_nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.service not in _SERVICES:
            raise ValueError(
                f"service must be one of {_SERVICES}, got {self.service!r}")
        object.__setattr__(self, "byzantine_nodes",
                           tuple(int(b) for b in self.byzantine_nodes))
        if self.lowlatency_membership and self.service != "lowlatency":
            raise ValueError(
                "lowlatency_membership requires service='lowlatency'")
        if self.byzantine_nodes and self.service == "lowlatency":
            raise ValueError(
                "byzantine_nodes are not supported by the lowlatency service")


@dataclass(frozen=True)
class RunSpec:
    """The complete, serializable description of one simulated run.

    ``n_rounds`` is how long :func:`repro.spec.execute` drives the
    cluster; ``reducer`` optionally names a registered reducer (see
    :mod:`repro.spec.reducers`) that turns the finished cluster into
    the run's result value.
    """

    protocol: ProtocolSpec
    cluster: ClusterSpec = ClusterSpec()
    schedule: ScheduleSpec = ScheduleSpec()
    variant: VariantSpec = VariantSpec()
    scenarios: Tuple[ScenarioSpec, ...] = ()
    n_rounds: int = 0
    reducer: Optional[str] = None
    #: Execution backend: "event" (discrete-event engine, the oracle) or
    #: "vectorized" (numpy round kernel, bit-identical observables).  The
    #: backend never changes *what* is computed, only *how*, so it is
    #: excluded from digests: results cached from one backend satisfy
    #: requests made with the other.
    backend: str = "event"

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if self.n_rounds < 0:
            raise ValueError("n_rounds must be >= 0")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.variant.service == "lowlatency":
            if self.schedule.kind != "default":
                raise ValueError(
                    "the lowlatency service manages its own schedules; "
                    "use schedule kind 'default'")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-native nested dict (schema-tagged, lossless).

        The default backend is omitted so specs written before the
        backend field existed round-trip byte-identically.
        """
        data = asdict(self)
        data["spec"] = RUNSPEC_SCHEMA
        if data["backend"] == "event":
            del data["backend"]
        return _json_canonical(data)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(data)
        schema = data.pop("spec", RUNSPEC_SCHEMA)
        if schema != RUNSPEC_SCHEMA:
            raise ValueError(
                f"unsupported spec schema {schema!r}: this build reads "
                f"{RUNSPEC_SCHEMA!r} specs; re-emit the spec with "
                f"`repro-diag spec` from the matching version")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RunSpec fields {unknown}")
        exec_after = data.get("schedule", {}).get("exec_after")
        if isinstance(exec_after, list):
            data["schedule"] = dict(data["schedule"],
                                    exec_after=tuple(exec_after))
        return cls(
            protocol=ProtocolSpec(**data["protocol"]),
            cluster=ClusterSpec(**data.get("cluster", {})),
            schedule=ScheduleSpec(**data.get("schedule", {})),
            variant=VariantSpec(**data.get("variant", {})),
            scenarios=tuple(ScenarioSpec(**s)
                            for s in data.get("scenarios", ())),
            n_rounds=data.get("n_rounds", 0),
            reducer=data.get("reducer"),
            backend=data.get("backend", "event"),
        )

    def to_json(self) -> str:
        """Stable JSON rendering (sorted keys, indent 2, newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec previously rendered with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def full_digest(self) -> str:
        """Untruncated sha256 hex digest of the canonical JSON form.

        This is the collision-resistant identity the result store keys
        payloads by; :meth:`digest` is its 12-hex prefix, kept short for
        display and metrics labels.  The execution backend is *not*
        hashed: both backends compute the same observables, so a stored
        event-engine result is a valid answer for a vectorized request
        and vice versa.
        """
        data = self.to_dict()
        data.pop("backend", None)
        canonical = json.dumps(data, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def digest(self) -> str:
        """Stable 12-hex-digit content hash (prefix of :meth:`full_digest`)."""
        return self.full_digest()[:12]

    def with_updates(self, **changes) -> "RunSpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **changes)


__all__ = [
    "RUNSPEC_SCHEMA",
    "BACKENDS",
    "SCENARIO_REGISTRY",
    "ProtocolSpec",
    "ClusterSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "VariantSpec",
    "RunSpec",
]
