"""The one build path: spec -> cluster -> result.

:func:`build` assembles the exact stack a hand-wired experiment would —
:class:`~repro.core.service.DiagnosedCluster`,
:class:`~repro.core.service.MembershipCluster` or
:class:`~repro.core.service.LowLatencyCluster` — from a
:class:`~repro.spec.model.RunSpec`, attaching every scenario (slot
bursts resolve their windows at attach, stochastic scenarios draw from
the cluster's named streams).

:func:`execute` drives the built cluster for ``spec.n_rounds`` and
applies a reducer (the spec's named one by default).  When a metrics
registry is supplied, the run additionally increments the provenance
counter ``spec.run.<digest>``, so merged observability reports say
exactly which serialized runs produced them.

:func:`run_spec_dict` is the generic, picklable worker the parallel
runner fans out: specs travel between processes as the plain dicts
``RunSpec.to_dict`` emits, which keeps ``jobs=N`` byte-identical to
``jobs=1``.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..core.service import (
    DiagnosedCluster,
    LowLatencyCluster,
    MembershipCluster,
)
from .model import RunSpec
from .reducers import resolve_reducer

#: Metrics namespace for the per-run provenance counters.
PROVENANCE_PREFIX = "spec.run."

AnyCluster = Union[DiagnosedCluster, LowLatencyCluster]


def build(spec: RunSpec, metrics: Optional[Any] = None) -> AnyCluster:
    """Assemble the cluster a spec describes (without running it).

    The returned object is the same facade the hand-wired path would
    produce, with all scenarios attached; callers drive it with
    ``run_rounds`` and query it exactly as before.
    """
    config = spec.protocol.to_config()
    c, s, v = spec.cluster, spec.schedule, spec.variant
    common = dict(round_length=c.round_length, tx_fraction=c.tx_fraction,
                  seed=c.seed, n_channels=c.n_channels,
                  trace_level=c.trace_level, fast_path=v.fast_path,
                  metrics=metrics, bitset=v.bitset)
    if v.service == "lowlatency":
        target: AnyCluster = LowLatencyCluster(
            config, membership=v.lowlatency_membership, **common)
    else:
        cluster_cls = (DiagnosedCluster if v.service == "diagnostic"
                       else MembershipCluster)
        if s.kind == "dynamic":
            common["dynamic_schedules"] = True
        elif s.kind == "static":
            exec_after = s.exec_after
            common["exec_after"] = (exec_after if isinstance(exec_after, int)
                                    else list(exec_after))
        target = cluster_cls(config, byzantine_nodes=v.byzantine_nodes,
                             **common)
    for scenario_spec in spec.scenarios:
        scenario = scenario_spec.build(streams=target.cluster.streams)
        target.cluster.add_scenario(scenario)
        # Adaptive scenarios (e.g. AdaptiveSaboteur) read live protocol
        # state; hand them the facade they are attached to.
        bind_observer = getattr(scenario, "bind_observer", None)
        if callable(bind_observer):
            bind_observer(target)
    return target


def execute(spec: RunSpec, reducer: Union[None, str, Any] = None,
            metrics: Optional[Any] = None) -> Any:
    """Build, run and reduce one spec.

    ``reducer`` overrides the spec's own ``reducer`` name; with neither,
    the default summary reducer applies.  The reducer's optional
    ``prepare`` hook runs between assembly and driving, so it can
    install probes whose observations ``reduce`` scores afterwards.

    ``spec.backend`` picks the execution engine: ``"event"`` (default)
    drives the discrete-event cluster below; ``"vectorized"`` dispatches
    to the numpy round kernel (:mod:`repro.vec`), which produces the
    same result and metrics for the spec shapes it supports.
    """
    if spec.backend == "vectorized":
        from ..vec import execute_vectorized

        return execute_vectorized(spec, reducer=reducer, metrics=metrics)
    resolved = resolve_reducer(reducer if reducer is not None
                               else spec.reducer)
    target = build(spec, metrics=metrics)
    prepare = getattr(resolved, "prepare", None)
    state = prepare(target, spec) if prepare is not None else None
    target.run_rounds(spec.n_rounds)
    if metrics is not None and metrics.enabled:
        metrics.counter(PROVENANCE_PREFIX + spec.digest()).inc()
    return resolved.reduce(target, spec, state)


def run_spec_dict(spec_dict: dict, collect_metrics: bool = False):
    """Generic worker: execute a spec shipped as a plain dict.

    This is the only callable the parallel sweeps submit to the process
    pool.  Without ``collect_metrics`` it returns the reduced result;
    with it, the run is metered through a fresh in-process registry and
    the worker returns ``(result, snapshot)``.
    """
    spec = RunSpec.from_dict(spec_dict)
    if not collect_metrics:
        return execute(spec)
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    result = execute(spec, metrics=registry)
    return result, registry.snapshot()


def strip_provenance(snapshot: dict) -> dict:
    """A copy of a metrics snapshot without the ``spec.run.*`` counters.

    Differential tests compare spec-built runs against hand-wired
    reference runs; the provenance counters are the one deliberate
    difference, so they are stripped before byte comparison.
    """
    counters = {name: value
                for name, value in snapshot.get("counters", {}).items()
                if not name.startswith(PROVENANCE_PREFIX)}
    stripped = dict(snapshot)
    stripped["counters"] = counters
    return stripped


__all__ = [
    "PROVENANCE_PREFIX",
    "build",
    "execute",
    "run_spec_dict",
    "strip_provenance",
]
