"""Reducer registry: named, picklable post-processing for spec runs.

:func:`repro.spec.execute` turns a :class:`~repro.spec.model.RunSpec`
into a finished cluster; a *reducer* turns that cluster into the run's
result value.  Because a :class:`RunSpec` can name its reducer (a plain
string that survives JSON and pickling), one generic worker can execute
any campaign's tasks: the worker rebuilds the spec, resolves the name
here, and returns whatever the reducer computes — the sweep layer never
needs per-campaign picklable closures again.

A reducer is any object with::

    reduce(target, spec, state) -> result

and optionally::

    prepare(target, spec) -> state

``prepare`` runs after the cluster is built but *before* the simulation
is driven — the place to install probes (e.g. counter-evolution hooks)
whose observations ``reduce`` later scores.  Reducers must be stateless
(shared registry instances are called concurrently-by-copy in worker
processes) and deterministic.

Experiment modules register their reducers at import time with
:func:`register_reducer`; :func:`resolve_reducer` lazily imports those
provider modules so worker processes resolve names without the caller
having to pre-import anything.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Union

#: Modules that register reducers on import (lazily loaded on lookup).
PROVIDER_MODULES = (
    "repro.experiments.validation",
    "repro.experiments.table2",
    "repro.analysis.rare",
)

_REDUCERS: Dict[str, Any] = {}


def register_reducer(cls):
    """Class decorator: instantiate and register under ``cls.name``."""
    instance = cls()
    name = getattr(instance, "name", None)
    if not name:
        raise ValueError(f"reducer {cls!r} must define a non-empty name")
    existing = _REDUCERS.get(name)
    if existing is not None and type(existing) is not cls:
        raise ValueError(f"reducer name {name!r} already registered")
    _REDUCERS[name] = instance
    return cls


def registered_reducers() -> Dict[str, Any]:
    """Snapshot of the registry (after loading all providers)."""
    _load_providers()
    return dict(_REDUCERS)


def _load_providers() -> None:
    for module in PROVIDER_MODULES:
        importlib.import_module(module)


class SummaryReducer:
    """Default reducer: a small deterministic summary dict.

    Reports the spec digest, the rounds driven and — where the variant
    exposes it — whether the cross-node consistency property held.
    """

    name = "summary"

    def reduce(self, target, spec, state) -> Dict[str, Any]:
        """Summarise a finished run as a JSON-native dict."""
        summary: Dict[str, Any] = {
            "digest": spec.digest(),
            "service": spec.variant.service,
            "rounds": spec.n_rounds,
        }
        if hasattr(target, "consistent_health_history"):
            summary["consistent"] = target.consistent_health_history()
        elif hasattr(target, "consistent_verdicts"):
            summary["consistent"] = target.consistent_verdicts()
        return summary


_DEFAULT = SummaryReducer()
_REDUCERS[_DEFAULT.name] = _DEFAULT


def resolve_reducer(reducer: Union[None, str, Any]) -> Any:
    """Resolve ``reducer`` to a reducer object.

    ``None`` yields the default :class:`SummaryReducer`; a string is
    looked up in the registry (loading the provider modules on a miss);
    anything with a ``reduce`` attribute passes through unchanged.
    """
    if reducer is None:
        return _DEFAULT
    if isinstance(reducer, str):
        if reducer not in _REDUCERS:
            _load_providers()
        try:
            return _REDUCERS[reducer]
        except KeyError:
            raise ValueError(
                f"unknown reducer {reducer!r}; registered: "
                f"{sorted(_REDUCERS)}") from None
    if not hasattr(reducer, "reduce"):
        raise TypeError(f"{reducer!r} is not a reducer (no reduce method)")
    return reducer


__all__ = [
    "PROVIDER_MODULES",
    "SummaryReducer",
    "register_reducer",
    "registered_reducers",
    "resolve_reducer",
]
