"""Lower fault scenarios into per-slot boolean masks for the kernel.

The event engine consults the :class:`~repro.faults.injector.InjectionLayer`
once per transmission.  The vectorized backend evaluates the *same*
scenario objects ahead of time and materialises their effect as arrays:

* **Scripted** scenarios (bursts, sender faults, crashes) are pure
  functions of ``(round, slot)``: one :meth:`InjectionLayer.apply` pass
  over the horizon yields replicate-independent ``invalid`` / ``mal``
  reception masks plus a per-slot forged-payload table.
* **Stochastic** scenarios (Poisson transients, intermittent and
  duty-cycle senders, Gilbert-Elliott channels, fault storms,
  correlated EMI) are *prefix-stable*: their lazily sampled arrival
  sequences depend only on how far sampling has advanced, never on
  which slots were queried.  Rebuilding each replicate's scenarios from
  its own seeded :class:`~repro.sim.rng.RandomStreams` and probing
  every slot therefore reproduces the event engine's draws exactly,
  even though the event engine skips querying silent slots.  Correlated
  EMI is receiver-side rather than sender-side, so it lowers into its
  own ``stoch_invalid`` mask in ``[replicate, round, receiver, sender]``
  layout.
* **Adaptive** scenarios (``event_only = True`` on the class, e.g.
  :class:`~repro.faults.channels.AdaptiveSaboteur`) decide from live
  protocol state; they cannot be precomputed and are rejected with
  :class:`~repro.vec.errors.UnsupportedSpecError`.
* :class:`~repro.faults.processes.RandomSlotNoise` is the exception —
  it burns one RNG draw per *queried* transmission, and silent slots
  are never queried.  Its draws are pre-sampled into a flat array and
  the kernel advances a per-replicate cursor only on non-silent slots,
  in global slot order, mirroring the event engine's consumption.

The sender-side stochastic classes emit benign (all-receiver
detectable) directives only, so composition with scripted outcomes
reduces to ``invalid |= hit`` and ``mal &= ~hit`` — exactly what
:func:`~repro.faults.model.worst_outcome` computes receiver-wise; the
receiver-side EMI mask composes the same way through the kernel's
validity matrix (DETECTABLE dominates MALICIOUS because a malicious
reception requires a *valid* frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.channels import (CorrelatedEMI, DutyCycleIntermittent,
                               FaultStorm, GilbertElliottChannel)
from ..faults.injector import InjectionLayer, TransmissionContext
from ..faults.model import ReceptionOutcome
from ..faults.processes import (IntermittentSender, PoissonTransients,
                                RandomSlotNoise)
from ..sim.rng import RandomStreams
from ..core.syndrome import is_valid_syndrome
from ..spec.model import SCENARIO_REGISTRY
from ..tt.controller import CommunicationController
from .compiler import CompiledSchedule
from .errors import UnsupportedSpecError

_STOCHASTIC_TYPES = ("PoissonTransients", "IntermittentSender",
                     "RandomSlotNoise", "GilbertElliottChannel",
                     "CorrelatedEMI", "DutyCycleIntermittent", "FaultStorm")

#: Round-domain processes hitting one sender's slot, lowered via their
#: ``is_faulty_round`` oracle.
_SENDER_ROUND_TYPES = (IntermittentSender, DutyCycleIntermittent)

#: Whole-bus per-slot processes, lowered by probing ``is_quiescent`` on
#: every slot in global order (the probes perform exactly the sampling
#: ``directives`` would).
_SLOT_PROBE_TYPES = (PoissonTransients, GilbertElliottChannel, FaultStorm)


@dataclass
class NoisePlan:
    """Pre-sampled draws for one RandomSlotNoise scenario."""

    probability: float
    #: (replicates, n_rounds * n_slots) float64 — draws in consumption
    #: order; the kernel's cursor advances one entry per queried slot.
    draws: np.ndarray


@dataclass
class LoweredInjection:
    """All scenario effects over the horizon, as arrays.

    Mask layout is ``[round, slot-1, receiver-1]`` for the scripted
    masks and ``[replicate, round, slot-1]`` for stochastic hits (which
    affect every receiver alike).
    """

    n: int
    n_rounds: int
    #: Replicate-independent scripted reception masks, or None if no
    #: scripted scenario is active anywhere.
    invalid: Optional[np.ndarray] = None   # (rounds, n, n) bool
    mal: Optional[np.ndarray] = None       # (rounds, n, n) bool
    fid: Optional[np.ndarray] = None       # (rounds, n) int32 into tables
    #: Forged payload tables; entry 0 is the "no payload" sentinel.
    payload_bits: Optional[np.ndarray] = None   # (P, n) uint8
    payload_valid: Optional[np.ndarray] = None  # (P,) bool
    #: Per-replicate benign stochastic hits (Poisson + intermittent).
    stoch_hit: Optional[np.ndarray] = None  # (R, rounds, n) bool
    #: Per-replicate receiver-side invalidations (correlated EMI):
    #: layout ``[replicate, round, receiver-1, sender-1]``.
    stoch_invalid: Optional[np.ndarray] = None  # (R, rounds, n, n) bool
    #: Random slot noise plans (consumed online by the kernel).
    noise: List[NoisePlan] = field(default_factory=list)

    @property
    def any_malicious(self) -> bool:
        return self.mal is not None and bool(self.mal.any())


def _split_scenarios(spec: Any) -> Tuple[list, list]:
    """Partition ScenarioSpecs into (scripted, stochastic)."""
    scripted, stochastic = [], []
    for sc in spec.scenarios:
        cls = SCENARIO_REGISTRY[sc.type]
        if getattr(cls, "event_only", False):
            raise UnsupportedSpecError(
                f"scenario {cls.__name__} is event-only (its decisions "
                "read live protocol state and cannot be precomputed as "
                "masks) — run it with backend='event'")
        if cls.__name__ in _STOCHASTIC_TYPES:
            stochastic.append(sc)
        else:
            scripted.append(sc)
    return scripted, stochastic


def _payload_row(payload: Any, n: int) -> Tuple[bool, np.ndarray]:
    """Validity flag and bit row a forged payload contributes to a matrix.

    Mirrors the analysis path: the diagnostic service reads the "diag"
    channel of the latched value and checks it is a well-formed 0/1
    syndrome of length ``n``; anything else becomes an epsilon row.
    """
    value = CommunicationController.channel_of(payload, "diag")
    if is_valid_syndrome(value, n):
        return True, np.asarray(list(value), dtype=np.uint8)
    return False, np.zeros(n, dtype=np.uint8)


def lower_injection(spec: Any, compiled: CompiledSchedule, n_rounds: int,
                    seeds: Sequence[int]) -> LoweredInjection:
    """Evaluate ``spec``'s scenarios over ``n_rounds`` for every seed."""
    n = compiled.n
    tb = compiled.timebase
    lowered = LoweredInjection(n=n, n_rounds=n_rounds)
    scripted, stochastic = _split_scenarios(spec)

    streams_names = [sc.params.get("rng_stream") for sc in stochastic]
    dup = {name for name in streams_names if streams_names.count(name) > 1}
    if dup:
        raise UnsupportedSpecError(
            f"stochastic scenarios share rng_stream(s) {sorted(dup)}; "
            "interleaved draws from a shared stream depend on event "
            "ordering and cannot be lowered — use distinct streams")

    if scripted:
        _lower_scripted(lowered, scripted, tb, n, n_rounds)
    if stochastic:
        _lower_stochastic(lowered, stochastic, spec, tb, n, n_rounds, seeds)
    return lowered


def _lower_scripted(lowered: LoweredInjection, scripted: list,
                    tb: Any, n: int, n_rounds: int) -> None:
    layer = InjectionLayer()
    for sc in scripted:
        layer.add(sc.build(streams=None))
    receivers = tuple(range(1, n + 1))
    invalid = np.zeros((n_rounds, n, n), dtype=bool)
    mal = np.zeros((n_rounds, n, n), dtype=bool)
    fid = np.zeros((n_rounds, n), dtype=np.int32)
    payload_valid = [False]
    payload_bits = [np.zeros(n, dtype=np.uint8)]
    touched = False
    for p in range(n_rounds):
        for s in range(1, n + 1):
            if layer.is_quiescent(p, s, tb):
                continue
            ctx = TransmissionContext(
                time=tb.slot_start(p, s), round_index=p, slot=s,
                sender=s, receivers=receivers, channel=0, timebase=tb)
            out = layer.apply(ctx)
            for r, o in out.outcomes.items():
                if o is ReceptionOutcome.DETECTABLE:
                    invalid[p, s - 1, r - 1] = True
                    touched = True
                elif o is ReceptionOutcome.MALICIOUS:
                    mal[p, s - 1, r - 1] = True
                    touched = True
            if out.malicious_payload is not None:
                valid, bits = _payload_row(out.malicious_payload, n)
                payload_valid.append(valid)
                payload_bits.append(bits)
                fid[p, s - 1] = len(payload_valid) - 1
    if touched:
        lowered.invalid = invalid
        lowered.mal = mal
        lowered.fid = fid
        lowered.payload_valid = np.asarray(payload_valid, dtype=bool)
        lowered.payload_bits = np.stack(payload_bits)


def _lower_stochastic(lowered: LoweredInjection, stochastic: list,
                      spec: Any, tb: Any, n: int, n_rounds: int,
                      seeds: Sequence[int]) -> None:
    n_rep = len(seeds)
    hit: Optional[np.ndarray] = None
    invalid: Optional[np.ndarray] = None
    noise_specs = [sc for sc in stochastic
                   if SCENARIO_REGISTRY[sc.type] is RandomSlotNoise]
    emi_specs = [sc for sc in stochastic
                 if SCENARIO_REGISTRY[sc.type] is CorrelatedEMI]
    other_specs = [sc for sc in stochastic
                   if SCENARIO_REGISTRY[sc.type] is not RandomSlotNoise
                   and SCENARIO_REGISTRY[sc.type] is not CorrelatedEMI]
    if other_specs:
        hit = np.zeros((n_rep, n_rounds, n), dtype=bool)
    if emi_specs:
        invalid = np.zeros((n_rep, n_rounds, n, n), dtype=bool)
    noise_draws = [np.empty((n_rep, n_rounds * n), dtype=np.float64)
                   for _ in noise_specs]
    noise_probs = [0.0] * len(noise_specs)

    for rep, seed in enumerate(seeds):
        streams = RandomStreams(int(seed))
        for sc in other_specs:
            inst = sc.build(streams=streams)
            if isinstance(inst, _SENDER_ROUND_TYPES):
                # Round-domain process on one sender's slot; sampling is
                # monotone in the round index, so one forward pass over
                # the horizon reproduces the event engine's set exactly.
                col = inst.sender - 1
                for p in range(n_rounds):
                    if inst.is_faulty_round(p):
                        hit[rep, p, col] = True
            elif isinstance(inst, _SLOT_PROBE_TYPES):
                # Whole-bus process probed per slot with the scenario's
                # own oracle (same comparisons, same order).
                for p in range(n_rounds):
                    for s in range(1, n + 1):
                        if not inst.is_quiescent(p, s, tb):
                            hit[rep, p, s - 1] = True
            else:  # pragma: no cover - registry guarantees the split
                raise UnsupportedSpecError(
                    f"cannot lower stochastic scenario {type(inst).__name__}")
        for sc in emi_specs:
            inst = sc.build(streams=streams)
            # One latent event per round knocks out a receiver
            # neighbourhood for every sender's slot of that round.
            for p in range(n_rounds):
                affected = inst.affected_receivers(p, tb)
                for r in affected:
                    invalid[rep, p, r - 1, :] = True
        for i, sc in enumerate(noise_specs):
            inst = sc.build(streams=streams)
            noise_probs[i] = inst.probability
            rng = inst._rng
            noise_draws[i][rep] = [rng.random()
                                   for _ in range(n_rounds * n)]
    lowered.stoch_hit = hit
    lowered.stoch_invalid = invalid
    lowered.noise = [NoisePlan(probability=noise_probs[i],
                               draws=noise_draws[i])
                     for i in range(len(noise_specs))]


__all__ = ["LoweredInjection", "NoisePlan", "lower_injection"]
