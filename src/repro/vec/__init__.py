"""Vectorized round-kernel backend (numpy).

Selected per spec with ``RunSpec(backend="vectorized")``: instead of
the event engine's one-event-per-slot simulation, whole TDMA rounds of
a replicate batch advance as vector arithmetic over
``(replicates, N, N)`` arrays — bit-identical observables, orders of
magnitude more rounds per second, and Monte Carlo batches in one kernel
execution.

numpy is the backend's only third-party dependency and is deliberately
a *soft* one: importing :mod:`repro.vec` (and everything that reaches
it, e.g. the CLI) works without numpy installed; only actually
*running* the vectorized backend raises :class:`BackendUnavailableError`
then.  The event backend never touches this package.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .errors import BackendUnavailableError, UnsupportedSpecError

try:  # soft dependency: probed once at import, reported on use
    import numpy as _numpy  # noqa: F401
except ImportError as exc:  # pragma: no cover - numpy ships in the env
    _NUMPY_ERROR: Optional[ImportError] = exc
else:
    _NUMPY_ERROR = None

#: True when numpy imported successfully and the backend can run.
NUMPY_AVAILABLE = _NUMPY_ERROR is None


def require_numpy() -> None:
    """Raise :class:`BackendUnavailableError` when numpy is missing."""
    if _NUMPY_ERROR is not None:
        raise BackendUnavailableError(
            "backend 'vectorized' requires numpy, which is not installed "
            f"({_NUMPY_ERROR}); install numpy or use backend='event'"
        ) from _NUMPY_ERROR


def run_batch(spec: Any, seeds: Optional[Sequence[int]] = None,
              replicates: Optional[int] = None,
              reintegration: bool = False):
    """Run one spec over a replicate batch (see :mod:`repro.vec.kernel`)."""
    require_numpy()
    from .kernel import run_batch as impl
    return impl(spec, seeds=seeds, replicates=replicates,
                reintegration=reintegration)


def execute_vectorized(spec: Any, reducer: Any = None,
                       metrics: Optional[Any] = None) -> Any:
    """Vectorized single-replicate equivalent of ``spec.build.execute``."""
    require_numpy()
    from .kernel import execute_vectorized as impl
    return impl(spec, reducer=reducer, metrics=metrics)


def execute_batch(spec: Any, replicates: Optional[int] = None,
                  seeds: Optional[Sequence[int]] = None,
                  reducer: Any = None,
                  collect_metrics: bool = False) -> List[Any]:
    """Run + reduce a whole replicate batch in one kernel execution."""
    require_numpy()
    from .kernel import execute_batch as impl
    return impl(spec, replicates=replicates, seeds=seeds, reducer=reducer,
                collect_metrics=collect_metrics)


__all__ = [
    "BackendUnavailableError",
    "NUMPY_AVAILABLE",
    "UnsupportedSpecError",
    "execute_batch",
    "execute_vectorized",
    "require_numpy",
    "run_batch",
]
