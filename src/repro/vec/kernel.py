"""Numpy round kernel: lockstep simulation of rounds × replicates.

Instead of scheduling one discrete event per slot delivery and job
execution, this backend advances **whole TDMA rounds** of a batch of
independent Monte Carlo replicates with vector arithmetic over
``(replicates, N, N)`` arrays.  The mapping rests on two observations:

1. *The protocol consumes only per-slot validity observables.*  A row of
   the diagnostic matrix is read only when the corresponding validity
   bit is 1, and that bit refers to exactly one physical transmission —
   so the kernel tracks, per round, one ``(R, receiver, sender)``
   validity matrix plus the per-sender latched payload, and never needs
   the event engine's per-controller latched-value state.
2. *Jobs partition into two phases per physical round.*  A static
   schedule fixes, per node, how many deliveries of the round precede
   its job (``pos_i``).  The TDMA timeline interleaves as
   ``tx(1) < job(pos=0) < rx(1) < job(pos=1) < tx(2) < ...``; all
   non-shifted jobs read only rounds ``< p`` data (their round-``p``
   reads stop at slot ``pos_i``, and read alignment maps those to the
   *effective* previous round), so the round replays exactly as:
   stage 1 (non-shifted jobs, effective round ``p``), stage 2 (all N
   slots), stage 3 (footnote-1 jobs, effective round ``p+1``).
   Intra-round feedback — a stage-1 job's interface write or
   transmission toggle reaching its own later slot — is routed by the
   compiled ``send_curr_phys`` flag; an isolation's IGNORE status masks
   only the deliveries after the isolating job (``after_job`` mask).

Bit-identity with the event engine is pinned by the differential fuzz
(`tests/test_backend_equivalence_fuzz.py`): health vectors, p/r
counters, isolation times and metrics snapshots must match exactly,
across fault scenarios × bitset on/off × schedules.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import IsolationMode
from ..spec.model import RunSpec
from .compiler import CompiledSchedule, compile_schedule
from .errors import UnsupportedSpecError
from .inject import LoweredInjection, lower_injection

#: Histogram bounds of diag.matrix_epsilon_rows (mirrors DiagnosticService).
_EPS_BOUNDS = (0, 1, 2, 4, 8, 16, 32)

#: Metrics namespace for the per-run provenance counters (mirrors
#: repro.spec.build.PROVENANCE_PREFIX without importing it — build
#: imports this module lazily, keeping the layering acyclic).
_PROVENANCE_PREFIX = "spec.run."

#: Semantic counters the kernel accumulates per replicate.  These are
#: exactly the protocol-level counters an event-engine run with metrics
#: enabled produces; the event engine's additional *strategy* counters
#: (fast-path/cache/popcount tallies) describe how it computes, not
#: what, and have no vectorized equivalent.
_ACC_COUNTERS = (
    "bus.slots_silent",
    "diag.analysis_rounds",
    "diag.uniform_shortcut_rounds",
    "diag.hv_transitions",
    "diag.isolations",
    "diag.reintegrations",
    "vote.hmaj_calls",
    "vote.hmaj_majority",
    "vote.hmaj_bottom",
    "vote.hmaj_default_healthy",
    "pr.penalty_increments",
    "pr.reward_increments",
    "pr.forget_resets",
    "pr.isolation_verdicts",
)


def validate_spec(spec: RunSpec) -> None:
    """Reject specs using features the kernel does not model."""
    v = spec.variant
    if v.service != "diagnostic":
        raise UnsupportedSpecError(
            f"vectorized backend supports service='diagnostic' only, "
            f"got {v.service!r}")
    if v.byzantine_nodes:
        raise UnsupportedSpecError(
            "vectorized backend does not model byzantine nodes")
    if spec.cluster.n_channels != 1:
        raise UnsupportedSpecError(
            "vectorized backend models a single-channel bus "
            f"(n_channels={spec.cluster.n_channels})")
    if spec.schedule.kind == "dynamic":
        raise UnsupportedSpecError(
            "vectorized backend requires a static schedule")


class _Kernel:
    """State and per-round transition of one replicate batch."""

    def __init__(self, spec: RunSpec, compiled: CompiledSchedule,
                 lowered: LoweredInjection, n_rep: int,
                 reintegration: bool) -> None:
        cfg = spec.protocol.to_config()
        self.config = cfg
        n = compiled.n
        self.n = n
        self.R = n_rep
        self.n_rounds = spec.n_rounds
        self.trace_level = spec.cluster.trace_level
        self.compiled = compiled
        self.low = lowered
        self.pipe = cfg.detection_pipeline_rounds()
        self.startup = cfg.startup_rounds
        self.cfg_all_sc = cfg.all_send_curr_round
        self.P = cfg.penalty_threshold
        self.RT = cfg.reward_threshold
        self.crit = np.asarray(cfg.criticalities, dtype=np.int64)
        self.ignore_mode = cfg.isolation_mode is IsolationMode.IGNORE
        self.halt = cfg.effective_halt_on_self_isolation
        if reintegration and cfg.reintegration_reward_threshold is None:
            raise ValueError(
                "reintegration requested but the config sets no "
                "reintegration_reward_threshold")
        self.reint_th = (cfg.reintegration_reward_threshold
                         if reintegration else None)
        self.T = compiled.timebase.round_length
        self.send_curr = compiled.send_curr
        self.scp = compiled.send_curr_phys
        self.offset = compiled.offset
        # after_job[i, s-1]: slot s of the round is delivered after node
        # i's job (so a status change taken in the job masks it).
        self.after_job = (np.arange(1, n + 1)[None, :]
                          > compiled.pos[:, None])

        R = n_rep
        # Per-observer protocol state: [replicate, observer, subject].
        self.ACTIVE = np.ones((R, n, n), dtype=bool)
        self.PEN = np.zeros((R, n, n), dtype=np.int64)
        self.REW = np.zeros((R, n, n), dtype=np.int64)
        self.PREV_AL = np.zeros((R, n, n), dtype=bool)
        self.PREV_HV = np.zeros((R, n, n), dtype=bool)
        self.HAS_PREV = np.zeros((R, n), dtype=bool)
        # Interface-state OUT buffers: [replicate, sender, bit].
        self.OUT_bits = np.zeros((R, n, n), dtype=bool)
        self.OUT_set = np.zeros((R, n), dtype=bool)
        # IGNORE-mode reception masks (committed / pending within-round).
        self.IGN = np.zeros((R, n, n), dtype=bool)
        self.ign_pend = np.zeros((R, n, n), dtype=bool)
        # Transmission enables and within-round toggles.
        self.TX_EN = np.ones((R, n), dtype=bool)
        self.tx_off_pend = np.zeros((R, n), dtype=bool)
        self.tx_on_pend = np.zeros((R, n), dtype=bool)
        self.RCNT = (np.zeros((R, n, n), dtype=np.int64)
                     if self.reint_th is not None else None)
        self.first_iso = np.full((R, n), np.inf)
        #: (replicate, observer, isolated, round, time, penalty) tuples.
        self.iso_records: List[Tuple[int, int, int, int, float, int]] = []
        # Rolling per-round buffers.
        self.OWN: Dict[int, np.ndarray] = {}
        self.COLL: Dict[int, np.ndarray] = {}
        self.HVD: Dict[int, np.ndarray] = {}
        self.HVD_nodes: Dict[int, np.ndarray] = {}
        # Previous round's reception state (round -1: nothing received).
        self.V_prev = np.zeros((R, n, n), dtype=bool)
        self.S_bits_prev = np.zeros((R, n, n), dtype=bool)
        self.S_synd_prev = np.zeros((R, n), dtype=bool)
        self.MAL_prev = np.zeros((R, n, n), dtype=bool)
        self.fid_prev: Optional[np.ndarray] = None
        self._zero_mal = np.zeros((R, n, n), dtype=bool)
        # Per-replicate metric accumulators.
        self.acc = {name: np.zeros(R, dtype=np.int64)
                    for name in _ACC_COUNTERS}
        self.eps_bounds = np.asarray(_EPS_BOUNDS, dtype=np.int64)
        self.eps_hist = np.zeros((R, len(_EPS_BOUNDS) + 1), dtype=np.int64)
        self.eps_count = np.zeros(R, dtype=np.int64)
        self._noise_cursor = [np.zeros(R, dtype=np.int64)
                              for _ in lowered.noise]
        self._rep_idx = np.arange(R)

    # ------------------------------------------------------------------
    def run(self) -> None:
        stage1, stage3 = self.compiled.stage1, self.compiled.stage3
        for p in range(self.n_rounds):
            self._out_old_bits = self.OUT_bits.copy()
            self._out_old_set = self.OUT_set.copy()
            self._jobs(stage1, p, p, self.V_prev, self.S_bits_prev,
                       self.S_synd_prev, self.MAL_prev, self.fid_prev,
                       stage3=False)
            V, Sb, Ss, MAL, fid = self._slots(p)
            self._jobs(stage3, p + 1, p, V, Sb, Ss, MAL, fid, stage3=True)
            self.V_prev, self.S_bits_prev, self.S_synd_prev = V, Sb, Ss
            self.MAL_prev, self.fid_prev = MAL, fid
            self._prune(p)

    def _prune(self, p: int) -> None:
        horizon = p - (self.pipe + 4)
        for store in (self.OWN, self.COLL):
            for key in [r for r in store if r < horizon]:
                del store[key]

    # ------------------------------------------------------------------
    # Stage 2: the N slots of physical round p
    # ------------------------------------------------------------------
    def _slots(self, p: int):
        R, n = self.R, self.n
        scp = self.scp
        eff_tx = self.TX_EN.copy()
        if self.tx_off_pend.any():
            eff_tx &= ~(self.tx_off_pend & scp[None, :])
        if self.tx_on_pend.any():
            eff_tx |= self.tx_on_pend & scp[None, :]
        self.acc["bus.slots_silent"] += (~eff_tx).sum(1)

        low = self.low
        hit: Optional[np.ndarray] = None
        if low.stoch_hit is not None:
            hit = low.stoch_hit[:, p, :].copy()
        for i, plan in enumerate(low.noise):
            if hit is None:
                hit = np.zeros((R, n), dtype=bool)
            cur = self._noise_cursor[i]
            # One draw per *queried* (non-silent) slot, in slot order —
            # the event engine's exact consumption pattern.
            for s0 in range(n):
                q = eff_tx[:, s0]
                if not q.any():
                    continue
                v = plan.draws[self._rep_idx, cur]
                hit[:, s0] |= q & (v < plan.probability)
                cur += q

        V_pre = np.broadcast_to(eff_tx[:, None, :], (R, n, n)).copy()
        if low.invalid is not None:
            V_pre &= ~low.invalid[p].T[None, :, :]
        if hit is not None:
            V_pre &= ~hit[:, None, :]
        if low.stoch_invalid is not None:
            # Per-replicate receiver-side invalidations (correlated
            # EMI), already in [replicate, receiver, sender] layout.
            V_pre &= ~low.stoch_invalid[:, p]
        # Local collision detector: the sender's own reception validity,
        # recorded before any IGNORE status masking (as the controller
        # does).  A silent own slot yields no record, i.e. False.
        diag_idx = np.arange(n)
        self.COLL[p] = V_pre[:, diag_idx, diag_idx]

        if self.ignore_mode and (self.IGN.any() or self.ign_pend.any()):
            mask = self.IGN
            if self.ign_pend.any():
                mask = mask | (self.ign_pend & self.after_job[None, :, :])
            V = V_pre & ~mask
        else:
            V = V_pre
        if self.ignore_mode:
            self.IGN |= self.ign_pend
            self.ign_pend[:] = False

        MAL: Optional[np.ndarray] = None
        fid: Optional[np.ndarray] = None
        if low.mal is not None and low.mal[p].any():
            m = np.broadcast_to(low.mal[p].T[None, :, :], (R, n, n)).copy()
            if hit is not None:
                m &= ~hit[:, None, :]
            MAL = m & V
            fid = low.fid[p]
        if MAL is None:
            MAL = self._zero_mal

        # Latched payloads: a job physically preceding its own slot
        # transmits this round's fresh interface write; everyone else's
        # slot carries the buffer as of the round start.
        Sb = np.where(scp[None, :, None], self.OUT_bits, self._out_old_bits)
        Ss = np.where(scp[None, :], self.OUT_set, self._out_old_set)

        if self.tx_off_pend.any():
            self.TX_EN &= ~self.tx_off_pend
            self.tx_off_pend[:] = False
        if self.tx_on_pend.any():
            self.TX_EN |= self.tx_on_pend
            self.tx_on_pend[:] = False
        return V, Sb, Ss, MAL, fid

    # ------------------------------------------------------------------
    # Stages 1/3: one batch of diagnostic jobs at effective round k
    # ------------------------------------------------------------------
    def _jobs(self, obs: np.ndarray, k: int, p: int, V_in, Sb_in, Ss_in,
              MAL_in, fid_in, stage3: bool) -> None:
        if obs.size == 0:
            return
        R, n = self.R, self.n
        al = V_in[:, obs, :]
        # Dissemination (send alignment, Alg. 1 lines 7-10).
        if self.cfg_all_sc:
            out = al
        else:
            sc = self.send_curr[obs]
            out = (np.where(sc[None, :, None], self.PREV_AL[:, obs, :], al)
                   if sc.any() else al)
        self.OUT_bits[:, obs, :] = out
        self.OUT_set[:, obs] = True

        d = k - self.pipe
        if d >= self.startup:
            self._analyse(obs, k, p, d, al, Sb_in, Ss_in, MAL_in, fid_in,
                          stage3)

        # Buffering for the next round (Alg. 1 lines 16-17).
        self.PREV_AL[:, obs, :] = al
        own = self.OWN.get(k - 1)
        if own is None:
            own = self.OWN[k - 1] = np.zeros((R, n, n), dtype=bool)
        own[:, obs, :] = al

    def _analyse(self, obs: np.ndarray, k: int, p: int, d: int, al,
                 Sb, Ss, MAL_in, fid_in, stage3: bool) -> None:
        R, n = self.R, self.n
        I = obs.size
        act = self.ACTIVE[:, obs, :]
        mal = MAL_in[:, obs, :]
        mal_any = bool(mal.any())
        # A row is non-ε iff the reception was valid, the sender is not
        # isolated, and the latched payload is a well-formed syndrome.
        if mal_any:
            pv = np.where(mal, self.low.payload_valid[fid_in][None, None, :],
                          Ss[:, None, :])
        else:
            pv = Ss[:, None, :]
        present = al & act & pv
        pc = present.sum(-1)

        # Uniform fast path, content form: every reception valid, every
        # sender active, every payload a set syndrome, none forged, all
        # senders' payloads identical.  Syndrome interning makes this
        # equivalent to the event engine's pointer-identity check.
        rows_eq = (Sb == Sb[:, :1, :]).all(axis=(1, 2))
        uni = al.all(-1) & act.all(-1) & (Ss.all(-1) & rows_eq)[:, None]
        if mal_any:
            uni &= ~mal.any(-1)

        self.acc["diag.analysis_rounds"] += I
        n_uni = uni.sum(1)
        self.acc["diag.uniform_shortcut_rounds"] += n_uni
        self.acc["vote.hmaj_calls"] += (I - n_uni) * n
        self.eps_hist[:, 0] += n_uni
        self.eps_count += I

        nonuni = ~uni
        uni_row = Sb[:, 0, :]
        if nonuni.any():
            ridx, iidx = np.nonzero(nonuni)
            eps_vals = (n - pc)[ridx, iidx]
            np.add.at(self.eps_hist,
                      (ridx, np.searchsorted(self.eps_bounds, eps_vals,
                                             side="left")), 1)
            pres = present.astype(np.int64)
            if mal_any:
                fb_bits = self.low.payload_bits[fid_in].astype(bool)
                B = np.where(mal[..., None], fb_bits[None, None, :, :],
                             Sb[:, None, :, :]).astype(np.int64)
                ones = np.matmul(pres[:, :, None, :], B)[:, :, 0, :]
                diagB = np.diagonal(B, axis1=2, axis2=3)
            else:
                ones = np.matmul(pres, Sb.astype(np.int64))
                diagB = np.diagonal(Sb, axis1=1,
                                    axis2=2).astype(np.int64)[:, None, :]
            # H-maj column vote: the accused's own row never votes.
            col_ones = ones - pres * diagB
            total = pc[..., None] - pres
            col_zeros = total - col_ones
            maj1 = col_ones > col_zeros
            maj0 = col_zeros > col_ones
            bottom = total == 0
            nu3 = nonuni[..., None]
            self.acc["vote.hmaj_majority"] += ((maj1 | maj0) & nu3).sum((1, 2))
            self.acc["vote.hmaj_bottom"] += (bottom & nu3).sum((1, 2))
            self.acc["vote.hmaj_default_healthy"] += (
                (~(maj1 | maj0 | bottom)) & nu3).sum((1, 2))
            if bottom.any():
                # Lemma 3 fallback: own buffered syndrome of the
                # diagnosed round (optimistic 1 on cold start), the
                # local collision detector for oneself.
                own_d = self.OWN.get(d)
                fb = (own_d[:, obs, :].copy() if own_d is not None
                      else np.ones((R, I, n), dtype=bool))
                coll_d = self.COLL.get(d)
                co = (coll_d[:, obs] if coll_d is not None
                      else np.zeros((R, I), dtype=bool))
                fb[:, np.arange(I), obs] = co
                hv = np.where(bottom, fb, ~maj0)
            else:
                hv = ~maj0
            cons = np.where(uni[..., None], uni_row[:, None, :], hv)
        else:
            cons = np.broadcast_to(uni_row[:, None, :], (R, I, n)).copy()

        # Health-vector transition metering + trace-equivalent storage.
        prev = self.PREV_HV[:, obs, :]
        has = self.HAS_PREV[:, obs]
        self.acc["diag.hv_transitions"] += (has
                                            & (prev != cons).any(-1)).sum(1)
        self.PREV_HV[:, obs, :] = cons
        self.HAS_PREV[:, obs] = True
        if self.trace_level >= 1:
            arr = self.HVD.get(d)
            if arr is None:
                arr = self.HVD[d] = np.zeros((R, n, n), dtype=bool)
                self.HVD_nodes[d] = np.zeros(n, dtype=bool)
            arr[:, obs, :] = cons
            self.HVD_nodes[d][obs] = True

        # Penalty/reward update, exact branch order of
        # PenaltyRewardState.update.
        faulty = ~cons
        pen = self.PEN[:, obs, :] + faulty * self.crit[None, None, :]
        self.acc["pr.penalty_increments"] += faulty.sum((1, 2))
        rew = np.where(faulty, 0, self.REW[:, obs, :])
        iso_v = faulty & (pen > self.P)
        self.acc["pr.isolation_verdicts"] += iso_v.sum((1, 2))
        hg = (~faulty) & (pen > 0)
        rew = rew + hg
        self.acc["pr.reward_increments"] += hg.sum((1, 2))
        forget = hg & (rew >= self.RT)
        if forget.any():
            pen = np.where(forget, 0, pen)
            rew = np.where(forget, 0, rew)
        self.acc["pr.forget_resets"] += forget.sum((1, 2))

        newly = act & iso_v
        act_new = act & ~iso_v
        self.acc["diag.isolations"] += newly.sum((1, 2))
        idxI = np.arange(I)
        if newly.any():
            if self.ignore_mode:
                tgt = self.IGN if stage3 else self.ign_pend
                tgt[:, obs, :] |= newly
            self_new = newly[:, idxI, obs]
            if self.halt and self_new.any():
                if stage3:
                    self.TX_EN[:, obs] &= ~self_new
                else:
                    self.tx_off_pend[:, obs] |= self_new
            t = p * self.T + self.offset[obs]
            cand = np.where(newly, t[None, :, None], np.inf).min(axis=1)
            self.first_iso = np.minimum(self.first_iso, cand)
            for r, ii, j in zip(*np.nonzero(newly)):
                self.iso_records.append(
                    (int(r), int(obs[ii]) + 1, int(j) + 1, int(k),
                     float(t[ii]), int(pen[r, ii, j])))

        if self.reint_th is not None:
            cnt = np.where(act_new, 0,
                           np.where(faulty, 0, self.RCNT[:, obs, :] + 1))
            reint = (~act_new) & (~faulty) & (cnt >= self.reint_th)
            if reint.any():
                cnt = np.where(reint, 0, cnt)
                act_new = act_new | reint
                pen = np.where(reint, 0, pen)
                rew = np.where(reint, 0, rew)
                self_r = reint[:, idxI, obs]
                if stage3:
                    self.TX_EN[:, obs] |= self_r
                else:
                    self.tx_on_pend[:, obs] |= self_r
            self.acc["diag.reintegrations"] += reint.sum((1, 2))
            self.RCNT[:, obs, :] = cnt

        self.PEN[:, obs, :] = pen
        self.REW[:, obs, :] = rew
        self.ACTIVE[:, obs, :] = act_new

    # ------------------------------------------------------------------
    def snapshot(self, rep: int) -> dict:
        """Metrics snapshot for one replicate, in registry format."""
        counters = {name: int(self.acc[name][rep]) for name in self.acc}
        counters["bus.slots_total"] = self.n * self.n_rounds
        counters["cluster.rounds_driven"] = self.n_rounds
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": {},
            "histograms": {
                "diag.matrix_epsilon_rows": {
                    "bounds": [int(b) for b in _EPS_BOUNDS],
                    "buckets": [int(v) for v in self.eps_hist[rep]],
                    "count": int(self.eps_count[rep]),
                },
            },
        }


class VectorizedRun:
    """Per-replicate facade mirroring :class:`DiagnosedCluster` queries."""

    def __init__(self, batch: "VectorizedBatch", rep: int) -> None:
        self._batch = batch
        self._rep = rep

    @property
    def config(self):
        return self._batch.config

    @property
    def seed(self) -> int:
        return self._batch.seeds[self._rep]

    @property
    def rounds_completed(self) -> int:
        return self._batch.spec.n_rounds

    def obedient_node_ids(self) -> Tuple[int, ...]:
        """All nodes — the vectorized backend models no byzantine nodes."""
        return tuple(range(1, self._batch.compiled.n + 1))

    def health_vectors(self, node_id: int) -> Dict[int, Tuple[int, ...]]:
        """Diagnosed round -> consistent health vector (trace-filtered)."""
        k = self._batch._kernel
        out: Dict[int, Tuple[int, ...]] = {}
        if k.trace_level < 1:
            return out
        i = node_id - 1
        for d in sorted(k.HVD):
            if not k.HVD_nodes[d][i]:
                continue
            hv = k.HVD[d][self._rep, i]
            if k.trace_level >= 2 or not hv.all():
                out[d] = tuple(int(b) for b in hv)
        return out

    def consistent_health_history(self, obedient_only: bool = True) -> bool:
        """Theorem 1 consistency over the stored health vectors."""
        reference: Dict[int, Tuple[int, ...]] = {}
        for node_id in self.obedient_node_ids():
            for d_round, hv in self.health_vectors(node_id).items():
                if d_round in reference:
                    if reference[d_round] != hv:
                        return False
                else:
                    reference[d_round] = hv
        return True

    def isolation_records(self, isolated: Optional[int] = None) -> List[dict]:
        """Isolation decisions of this replicate, oldest first."""
        out = []
        for rec in self._batch._kernel.iso_records:
            r, observer, target, round_k, time, penalty = rec
            if r != self._rep:
                continue
            if isolated is not None and target != isolated:
                continue
            out.append({"node": observer, "isolated": target,
                        "round_index": round_k, "time": time,
                        "penalty": penalty})
        return out

    def first_isolation_time(self, isolated: int) -> Optional[float]:
        """Earliest time any node isolated ``isolated`` (None if never)."""
        t = self._batch._kernel.first_iso[self._rep, isolated - 1]
        return None if np.isinf(t) else float(t)

    def active_matrix(self) -> Dict[int, Tuple[int, ...]]:
        """Each node's final activity vector (1 = considered active)."""
        k = self._batch._kernel
        return {i + 1: tuple(int(b) for b in k.ACTIVE[self._rep, i])
                for i in range(k.n)}

    def agreed_active_vector(self) -> Tuple[int, ...]:
        """The one activity vector all nodes agree on (asserts agreement)."""
        vectors = set(self.active_matrix().values())
        if len(vectors) != 1:
            raise AssertionError(
                f"obedient nodes disagree on activity: {sorted(vectors)}")
        return next(iter(vectors))

    def pr_snapshot(self, node_id: int) -> Dict[str, List[int]]:
        """Observer ``node_id``'s penalty/reward counters."""
        k = self._batch._kernel
        i = node_id - 1
        return {"penalties": [int(v) for v in k.PEN[self._rep, i]],
                "rewards": [int(v) for v in k.REW[self._rep, i]]}

    def metrics_snapshot(self) -> dict:
        """This replicate's semantic metrics, in registry snapshot format."""
        return self._batch._kernel.snapshot(self._rep)


class VectorizedBatch:
    """One kernel execution over a batch of replicate seeds."""

    def __init__(self, spec: RunSpec, seeds: Sequence[int],
                 reintegration: bool = False) -> None:
        validate_spec(spec)
        if not seeds:
            raise ValueError("need at least one replicate seed")
        self.spec = spec
        self.seeds = [int(s) for s in seeds]
        self.config = spec.protocol.to_config()
        self.compiled = compile_schedule(spec)
        lowered = lower_injection(spec, self.compiled, spec.n_rounds,
                                  self.seeds)
        self._kernel = _Kernel(spec, self.compiled, lowered,
                               len(self.seeds), reintegration)
        self._kernel.run()

    def __len__(self) -> int:
        return len(self.seeds)

    def view(self, rep: int) -> VectorizedRun:
        """The facade of one replicate (by batch index)."""
        return VectorizedRun(self, rep)

    def views(self) -> List[VectorizedRun]:
        """One facade per replicate, in seed order."""
        return [self.view(i) for i in range(len(self.seeds))]


def run_batch(spec: RunSpec, seeds: Optional[Sequence[int]] = None,
              replicates: Optional[int] = None,
              reintegration: bool = False) -> VectorizedBatch:
    """Run one spec over a batch of replicate seeds, in lockstep.

    ``seeds`` gives the replicates explicitly; ``replicates=K`` derives
    ``spec.cluster.seed + 0..K-1``.  With neither, the batch is the
    single replicate the spec itself describes.
    """
    if seeds is not None and replicates is not None:
        raise ValueError("pass seeds or replicates, not both")
    if seeds is None:
        count = 1 if replicates is None else int(replicates)
        seeds = [spec.cluster.seed + i for i in range(count)]
    return VectorizedBatch(spec, seeds, reintegration=reintegration)


def _replicate_spec(spec: RunSpec, seed: int) -> RunSpec:
    return spec.with_updates(cluster=replace(spec.cluster, seed=seed))


def _check_reducer(resolved: Any) -> None:
    if getattr(resolved, "prepare", None) is not None:
        raise UnsupportedSpecError(
            f"reducer {getattr(resolved, 'name', resolved)!r} installs "
            "probes on the event-engine cluster; run it with "
            "backend='event'")


def execute_vectorized(spec: RunSpec, reducer: Any = None,
                       metrics: Optional[Any] = None) -> Any:
    """Vectorized equivalent of :func:`repro.spec.build.execute`.

    Runs the spec as a one-replicate batch and reduces the replicate
    view.  With a metrics registry, the kernel's per-replicate snapshot
    is replayed into it (plus the provenance counter), so downstream
    snapshot consumers see the registry format they expect.
    """
    from ..spec.reducers import resolve_reducer

    resolved = resolve_reducer(reducer if reducer is not None
                               else spec.reducer)
    _check_reducer(resolved)
    batch = run_batch(spec)
    view = batch.view(0)
    if metrics is not None and metrics.enabled:
        replay_snapshot(view.metrics_snapshot(), metrics)
        metrics.counter(_PROVENANCE_PREFIX + spec.digest()).inc()
    return resolved.reduce(view, spec, None)


def execute_batch(spec: RunSpec, replicates: Optional[int] = None,
                  seeds: Optional[Sequence[int]] = None,
                  reducer: Any = None,
                  collect_metrics: bool = False) -> List[Any]:
    """Run + reduce a whole replicate batch in one kernel execution.

    Returns one result per replicate, each exactly what
    ``run_spec_dict(replicate_spec.to_dict())`` would have produced for
    the seed-shifted spec — including, with ``collect_metrics``, the
    ``(result, snapshot)`` pair with the replicate's provenance counter.
    This is the batched dispatch path of the campaign engine: one cache
    miss per replicate, one kernel execution for all of them.
    """
    from ..spec.reducers import resolve_reducer

    resolved = resolve_reducer(reducer if reducer is not None
                               else spec.reducer)
    _check_reducer(resolved)
    batch = run_batch(spec, seeds=seeds, replicates=replicates)
    results: List[Any] = []
    for i, seed in enumerate(batch.seeds):
        spec_r = _replicate_spec(spec, seed)
        view = batch.view(i)
        result = resolved.reduce(view, spec_r, None)
        if collect_metrics:
            snap = view.metrics_snapshot()
            counters = dict(snap["counters"])
            counters[_PROVENANCE_PREFIX + spec_r.digest()] = 1
            results.append((result, {
                "counters": dict(sorted(counters.items())),
                "gauges": snap["gauges"],
                "histograms": snap["histograms"],
            }))
        else:
            results.append(result)
    return results


def replay_snapshot(snapshot: dict, registry: Any) -> None:
    """Replay a kernel snapshot into a live MetricsRegistry.

    Counters are incremented by value; histogram buckets are refilled
    through representative observations (each bucket's smallest member
    under the registry's bisect_left bucketing), reconstructing the
    exact snapshot the kernel produced.
    """
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).inc(int(value))
    for name, h in snapshot.get("histograms", {}).items():
        bounds = list(h["bounds"])
        hist = registry.histogram(name, tuple(bounds))
        for b, count in enumerate(h["buckets"]):
            if not count:
                continue
            if b == 0:
                value = bounds[0]
            elif b == len(bounds):
                value = bounds[-1] + 1
            else:
                value = bounds[b]
            for _ in range(count):
                hist.observe(value)


__all__ = [
    "VectorizedBatch",
    "VectorizedRun",
    "execute_batch",
    "execute_vectorized",
    "replay_snapshot",
    "run_batch",
    "validate_spec",
]
