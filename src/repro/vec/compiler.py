"""Schedule compiler: lower a RunSpec's static schedule to index arrays.

The event engine re-derives ``l_i`` / ``send_curr_round_i`` from each
node's :class:`~repro.tt.schedule.StaticNodeSchedule` on every job
execution.  For a static schedule those values never change, so the
vectorized backend lowers them **once per spec** into flat numpy arrays
the round kernel indexes directly:

* ``l``, ``send_curr``, ``round_shift``, ``offset`` — the paper's
  schedule constants per node, computed by the *same* functions
  (:func:`~repro.tt.schedule.params_from_offset`,
  :func:`~repro.tt.schedule.offset_for_exec_after`) the event engine
  uses, so the lowering cannot drift from the oracle;
* ``pos`` — how many slot deliveries of the physical round precede the
  node's job (``l`` normally, ``N`` for footnote-1 shifted jobs); this
  drives the ordering of job effects versus slot effects inside one
  physical round;
* ``send_curr_phys`` — whether the job *physically* precedes the node's
  own sending slot of the round it runs in, which decides whether an
  interface write (or a transmission-disable) taken in this round's job
  already affects this round's own slot;
* ``stage1`` / ``stage3`` — 0-based node indices partitioned by
  ``round_shift``: nodes whose job belongs to the physical round
  (executed before their unseen slots) versus footnote-1 nodes whose
  job runs after the whole round and belongs to round ``k+1``.

Within one physical round the TDMA timeline interleaves jobs and slots
as ``tx(1) < job(l=0) < rx(1) < job(l=1) < tx(2) < ...``; because a job
with ``pos = l`` observes exactly slots ``1..l`` and its writes reach
slots derivable from ``send_curr_phys``, the kernel can replay the
round in three phases (stage-1 jobs, all N slots, stage-3 jobs) and
remain bit-identical to the fully interleaved event order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from ..tt.schedule import _EPS, offset_for_exec_after, params_from_offset
from ..tt.timebase import TimeBase
from .errors import UnsupportedSpecError


@dataclass(frozen=True)
class CompiledSchedule:
    """Static per-node schedule constants as flat arrays (0-based index)."""

    n: int
    timebase: TimeBase
    l: np.ndarray             # (n,) int64 — the paper's l_i
    send_curr: np.ndarray     # (n,) bool — send_curr_round_i predicate
    round_shift: np.ndarray   # (n,) int64 — 0, or 1 for footnote-1 jobs
    offset: np.ndarray        # (n,) float64 — job offset within the round
    pos: np.ndarray           # (n,) int64 — deliveries preceding the job
    send_curr_phys: np.ndarray  # (n,) bool — job before own physical slot
    stage1: np.ndarray        # 0-based node indices with round_shift == 0
    stage3: np.ndarray        # 0-based node indices with round_shift == 1
    all_send_curr: bool       # the global Alg. 1 line 7 predicate

    def job_time(self, physical_round: int) -> np.ndarray:
        """Per-node job execution instants in ``physical_round``.

        Same float expression (``round_start + offset``) the event
        engine's job events carry, so recorded isolation times match
        bit-for-bit.
        """
        return physical_round * self.timebase.round_length + self.offset


def compile_schedule(spec: Any) -> CompiledSchedule:
    """Lower ``spec``'s schedule (and cluster geometry) to constants.

    ``spec`` is a :class:`~repro.spec.model.RunSpec`.  Only static
    schedules (kinds ``default`` and ``static``) can be lowered — a
    dynamic schedule re-draws offsets per round and has no design-time
    constants.
    """
    schedule = spec.schedule
    if schedule.kind == "dynamic":
        raise UnsupportedSpecError(
            "the vectorized backend requires a static schedule; "
            "schedule kind 'dynamic' runs on the event backend only")
    n = spec.protocol.n_nodes
    tb = TimeBase(round_length=spec.cluster.round_length, n_slots=n,
                  tx_fraction=spec.cluster.tx_fraction)

    if schedule.kind == "default":
        exec_after: Tuple[int, ...] = (0,) * n
    elif isinstance(schedule.exec_after, int):
        exec_after = (schedule.exec_after,) * n
    else:
        if len(schedule.exec_after) != n:
            raise UnsupportedSpecError(
                f"exec_after has {len(schedule.exec_after)} entries "
                f"for {n} nodes")
        exec_after = tuple(schedule.exec_after)

    l = np.zeros(n, dtype=np.int64)
    send_curr = np.zeros(n, dtype=bool)
    round_shift = np.zeros(n, dtype=np.int64)
    offset = np.zeros(n, dtype=np.float64)
    pos = np.zeros(n, dtype=np.int64)
    send_curr_phys = np.zeros(n, dtype=bool)
    slot_len = tb.slot_length
    for idx in range(n):
        node_id = idx + 1
        off = offset_for_exec_after(tb, exec_after[idx])
        params = params_from_offset(tb, node_id, off)
        l[idx] = params.l
        send_curr[idx] = params.send_curr_round
        round_shift[idx] = params.round_shift
        offset[idx] = params.offset
        pos[idx] = n if params.round_shift else params.l
        # The *physical* flavour of send_curr: does the job precede the
        # node's own sending slot of the round its offset falls in?
        # Identical comparison to params_from_offset's, but without the
        # footnote-1 override (a shifted job sits after every slot of
        # its physical round, so this is always False for it).
        send_curr_phys[idx] = off < (node_id - 1) * slot_len - _EPS

    stage1 = np.flatnonzero(round_shift == 0)
    stage3 = np.flatnonzero(round_shift == 1)
    all_send_curr = bool(send_curr.all())
    if spec.protocol.all_send_curr_round and not all_send_curr:
        # Mirror DiagnosedCluster's construction-time consistency check.
        raise ValueError(
            "config.all_send_curr_round is set but the schedule does not "
            "satisfy the predicate (some node executes after its sending "
            "slot)")
    return CompiledSchedule(
        n=n, timebase=tb, l=l, send_curr=send_curr,
        round_shift=round_shift, offset=offset, pos=pos,
        send_curr_phys=send_curr_phys, stage1=stage1, stage3=stage3,
        all_send_curr=all_send_curr)


__all__ = ["CompiledSchedule", "compile_schedule"]
