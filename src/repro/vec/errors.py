"""Errors of the vectorized execution backend."""

from __future__ import annotations


class BackendUnavailableError(RuntimeError):
    """The vectorized backend was requested but numpy is not installed.

    Raised before any simulation work happens so callers (CLI, campaign
    engine) can report a clean actionable message instead of an
    ImportError from deep inside the kernel.
    """


class UnsupportedSpecError(ValueError):
    """The spec uses a feature the vectorized backend does not model.

    The vectorized kernel covers the static-schedule diagnostic service
    on a single-channel bus — the shape the paper's throughput and
    Monte Carlo experiments need.  Everything else (membership /
    low-latency variants, dynamic schedules, replicated buses,
    byzantine nodes) runs on the event engine; specs requesting those
    with ``backend="vectorized"`` fail fast with this error.
    """


__all__ = ["BackendUnavailableError", "UnsupportedSpecError"]
